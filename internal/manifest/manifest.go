// Package manifest implements assumption-carrying deployment
// descriptors. The paper's §4 discusses the XML deployment descriptors
// of J2EE/CORBA middleware and their "semantic gap"; its §5 asks for
// "mechanisms for propagating such knowledge through all stages of
// software development". A Manifest is that mechanism for this library:
// a JSON document that travels with a deployable unit and declares its
// assumption variables — names, provenance, alternatives, bind stages,
// bindings — plus the Boulding category its environment requires.
//
// Loading a manifest materializes a core.Registry, so the knowledge
// written down at design time is exactly the knowledge verified at run
// time: nothing is sifted off between stages.
package manifest

import (
	"encoding/json"
	"fmt"

	"aft/internal/core"
)

// VariableSpec is the serialized form of one assumption variable.
type VariableSpec struct {
	Name         string    `json:"name"`
	Doc          string    `json:"doc"`
	Syndrome     string    `json:"syndrome"` // "horning", "hidden-intelligence", "boulding"
	BindAt       string    `json:"bindAt"`   // "design", "compile", "deploy", "run"
	Alternatives []AltSpec `json:"alternatives"`
	AutoRebind   bool      `json:"autoRebind,omitempty"`
	Binding      *BindSpec `json:"binding,omitempty"`
}

// AltSpec is one serialized alternative.
type AltSpec struct {
	ID          string `json:"id"`
	Description string `json:"description,omitempty"`
}

// BindSpec records a binding made at or before packaging.
type BindSpec struct {
	Alternative string `json:"alternative"`
	Stage       string `json:"stage"`
}

// TraitsSpec serializes the Boulding traits claimed by the system.
type TraitsSpec struct {
	Dynamic           bool `json:"dynamic,omitempty"`
	MaintainsSetpoint bool `json:"maintainsSetpoint,omitempty"`
	RevisesStructure  bool `json:"revisesStructure,omitempty"`
	DividesLabour     bool `json:"dividesLabour,omitempty"`
	ModelsItself      bool `json:"modelsItself,omitempty"`
}

// Manifest is the deployment descriptor.
type Manifest struct {
	// System names the deployable unit.
	System string `json:"system"`
	// Description is free-form provenance.
	Description string `json:"description,omitempty"`
	// Variables are the declared assumption variables.
	Variables []VariableSpec `json:"variables"`
	// Traits describe the system's adaptivity.
	Traits TraitsSpec `json:"traits"`
	// RequiredCategory is the Boulding category the target environment
	// demands ("Thermostat", "Cell", ...). Empty means unconstrained.
	RequiredCategory string `json:"requiredCategory,omitempty"`
}

var (
	syndromes = map[string]core.Syndrome{
		"horning":             core.Horning,
		"hidden-intelligence": core.HiddenIntelligence,
		"boulding":            core.Boulding,
	}
	stages = map[string]core.BindTime{
		"design":  core.DesignTime,
		"compile": core.CompileTime,
		"deploy":  core.DeployTime,
		"run":     core.RunTime,
	}
	categories = map[string]core.BouldingCategory{
		"Framework":  core.Framework,
		"Clockwork":  core.Clockwork,
		"Thermostat": core.Thermostat,
		"Cell":       core.Cell,
		"Plant":      core.Plant,
		"Being":      core.Being,
	}
)

// Parse decodes and validates a JSON manifest.
func Parse(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: parse: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	if m.System == "" {
		return fmt.Errorf("manifest: system name required")
	}
	if len(m.Variables) == 0 {
		return fmt.Errorf("manifest: %q declares no assumption variables", m.System)
	}
	for _, v := range m.Variables {
		if _, ok := syndromes[v.Syndrome]; !ok {
			return fmt.Errorf("manifest: variable %q: unknown syndrome %q", v.Name, v.Syndrome)
		}
		if _, ok := stages[v.BindAt]; !ok {
			return fmt.Errorf("manifest: variable %q: unknown bind stage %q", v.Name, v.BindAt)
		}
		if v.Binding != nil {
			if _, ok := stages[v.Binding.Stage]; !ok {
				return fmt.Errorf("manifest: variable %q: unknown binding stage %q", v.Name, v.Binding.Stage)
			}
		}
	}
	if m.RequiredCategory != "" {
		if _, ok := categories[m.RequiredCategory]; !ok {
			return fmt.Errorf("manifest: unknown required category %q", m.RequiredCategory)
		}
	}
	return nil
}

// Encode renders the manifest as indented JSON.
func (m *Manifest) Encode() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Materialize builds a registry from the manifest, declaring every
// variable and applying recorded bindings.
func (m *Manifest) Materialize() (*core.Registry, error) {
	reg := core.NewRegistry()
	for _, vs := range m.Variables {
		alts := make([]core.Alternative, len(vs.Alternatives))
		for i, a := range vs.Alternatives {
			alts[i] = core.Alternative{ID: a.ID, Description: a.Description}
		}
		v := core.Variable{
			Name:         vs.Name,
			Doc:          vs.Doc,
			Syndrome:     syndromes[vs.Syndrome],
			BindAt:       stages[vs.BindAt],
			Alternatives: alts,
			AutoRebind:   vs.AutoRebind,
		}
		if err := reg.Declare(v); err != nil {
			return nil, err
		}
		if vs.Binding != nil {
			if err := reg.Bind(vs.Name, vs.Binding.Alternative, stages[vs.Binding.Stage]); err != nil {
				return nil, err
			}
		}
	}
	return reg, nil
}

// Report is the outcome of an Audit.
type Report struct {
	// System echoes the manifest.
	System string
	// Category is the system's classified Boulding category.
	Category core.BouldingCategory
	// RequiredCategory is the demanded category, Framework when
	// unconstrained.
	RequiredCategory core.BouldingCategory
	// BouldingClash reports a category shortfall — the Boulding
	// syndrome at packaging time.
	BouldingClash bool
	// Findings are the registry hygiene gaps.
	Findings []core.AuditFinding
}

// Audit materializes the manifest and checks it for the syndromes
// detectable without running: undocumented/unbound variables and a
// Boulding category shortfall.
func (m *Manifest) Audit() (Report, error) {
	reg, err := m.Materialize()
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		System: m.System,
		Category: core.Classify(core.Traits{
			Dynamic:           m.Traits.Dynamic,
			MaintainsSetpoint: m.Traits.MaintainsSetpoint,
			RevisesStructure:  m.Traits.RevisesStructure,
			DividesLabour:     m.Traits.DividesLabour,
			ModelsItself:      m.Traits.ModelsItself,
		}),
		Findings: reg.Audit(),
	}
	if m.RequiredCategory != "" {
		rep.RequiredCategory = categories[m.RequiredCategory]
		rep.BouldingClash = core.BouldingClash(rep.Category, rep.RequiredCategory)
	} else {
		rep.RequiredCategory = core.Framework
	}
	return rep, nil
}

// StaleBinding is one binding invalidated by a new environment.
type StaleBinding struct {
	// Variable is the assumption variable's name.
	Variable string
	// Bound is the packaged binding.
	Bound string
	// Observed is the new environment's fact.
	Observed string
	// Declared reports whether the observed fact is among the declared
	// alternatives (if not, even rebinding cannot absorb the move).
	Declared bool
}

// Requalify performs the §4 re-qualification activity "prescribed each
// time a system is relocated (e.g. reused, or ported)": it matches every
// recorded binding against the facts of the destination environment and
// returns the bindings that no longer hold. environment maps variable
// names to observed hypothesis IDs; variables absent from the map are
// skipped (unknown facts cannot invalidate, only verification at run
// time can).
func (m *Manifest) Requalify(environment map[string]string) []StaleBinding {
	var out []StaleBinding
	for _, v := range m.Variables {
		if v.Binding == nil {
			continue
		}
		observed, ok := environment[v.Name]
		if !ok || observed == v.Binding.Alternative {
			continue
		}
		declared := false
		for _, a := range v.Alternatives {
			if a.ID == observed {
				declared = true
				break
			}
		}
		out = append(out, StaleBinding{
			Variable: v.Name,
			Bound:    v.Binding.Alternative,
			Observed: observed,
			Declared: declared,
		})
	}
	return out
}

// Example returns a complete sample manifest: the Ariane-flavoured
// system used by cmd/aft-audit and the documentation.
func Example() *Manifest {
	return &Manifest{
		System:      "irs-guidance",
		Description: "inertial reference system guidance software, reused from the previous launcher generation",
		Variables: []VariableSpec{
			{
				Name:     "flight.horizontal-velocity-range",
				Doc:      "horizontal velocity representable as int16; inherited from the previous flight envelope",
				Syndrome: "horning",
				BindAt:   "deploy",
				Alternatives: []AltSpec{
					{ID: "int16", Description: "|v_h| < 32768"},
					{ID: "int64", Description: "wide envelope"},
				},
				AutoRebind: true,
				Binding:    &BindSpec{Alternative: "int16", Stage: "deploy"},
			},
			{
				Name:     "memory.failure-semantics",
				Doc:      "fault classes of the on-board memory; drives the §3.1 access-method selection",
				Syndrome: "hidden-intelligence",
				BindAt:   "compile",
				Alternatives: []AltSpec{
					{ID: "f1", Description: "CMOS-like transients"},
					{ID: "f3", Description: "SDRAM with SEL"},
					{ID: "f4", Description: "full single-event effects"},
				},
			},
		},
		Traits:           TraitsSpec{Dynamic: true, MaintainsSetpoint: true},
		RequiredCategory: "Cell",
	}
}
