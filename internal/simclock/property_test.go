package simclock

import (
	"testing"

	"aft/internal/xrand"
)

// TestReentrantSameTimeProperty is the property the scenario Runner's
// phase-transition and teardown mechanisms stand on: events scheduled
// from within a running event at the *current* time must execute in the
// same run, at that time, in schedule (seq) order — and never be
// dropped. The test builds randomized schedules whose events re-enter
// the scheduler up to a depth bound, then checks every executed event
// against the schedule order.
func TestReentrantSameTimeProperty(t *testing.T) {
	type record struct {
		at  Time
		seq int // global scheduling order
	}
	for seed := uint64(0); seed < 50; seed++ {
		rng := xrand.New(seed)
		s := New()
		var scheduled, executed []record
		nextSeq := 0

		var schedule func(at Time, depth int)
		schedule = func(at Time, depth int) {
			rec := record{at: at, seq: nextSeq}
			nextSeq++
			scheduled = append(scheduled, rec)
			s.At(at, func(sc *Scheduler) {
				if sc.Now() != rec.at {
					t.Fatalf("seed %d: event scheduled for %d ran at %d", seed, rec.at, sc.Now())
				}
				executed = append(executed, rec)
				if depth < 3 {
					// Re-enter: schedule 0..2 follow-ups, biased to the
					// current time (the re-entrant case under test),
					// sometimes the future.
					for n := rng.Intn(3); n > 0; n-- {
						at := sc.Now()
						if rng.Bool(0.3) {
							at += Time(rng.Intn(4))
						}
						schedule(at, depth+1)
					}
				}
			})
		}
		for i := 0; i < 10; i++ {
			schedule(Time(rng.Intn(8)), 0)
		}
		s.RunAll()

		if len(executed) != len(scheduled) {
			t.Fatalf("seed %d: scheduled %d events, executed %d — events were dropped",
				seed, len(scheduled), len(executed))
		}
		for i := 1; i < len(executed); i++ {
			prev, cur := executed[i-1], executed[i]
			if cur.at < prev.at {
				t.Fatalf("seed %d: time went backwards: %d after %d", seed, cur.at, prev.at)
			}
			if cur.at == prev.at && cur.seq < prev.seq {
				t.Fatalf("seed %d: same-time events out of schedule order: seq %d ran after %d at t=%d",
					seed, prev.seq, cur.seq, cur.at)
			}
		}
	}
}

// TestReentrantChainRunsSameStep pins the depth-first shape directly: a
// running event schedules a successor at the current time, which
// schedules another — all three must run at the same virtual time, in
// order, within one Run call.
func TestReentrantChainRunsSameStep(t *testing.T) {
	s := New()
	var order []string
	s.At(5, func(sc *Scheduler) {
		order = append(order, "a")
		sc.At(sc.Now(), func(sc *Scheduler) {
			order = append(order, "b")
			sc.At(sc.Now(), func(sc *Scheduler) {
				order = append(order, "c")
			})
		})
	})
	if n := s.Run(5); n != 3 {
		t.Fatalf("Run(5) executed %d events, want 3 (re-entrant same-time events must run within the horizon)", n)
	}
	if got := len(order); got != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("wrong order: %v", order)
	}
	if s.Now() != 5 {
		t.Fatalf("clock at %d, want 5", s.Now())
	}
}

// TestEarlyScheduledEventPrecedesLateChain mirrors the scenario
// Runner's teardown ordering: an event scheduled up front for time T
// must run before a chained tick that arrives at T with a later seq —
// so a teardown always precedes the voting round of its own step.
func TestEarlyScheduledEventPrecedesLateChain(t *testing.T) {
	s := New()
	var order []string
	s.At(3, func(*Scheduler) { order = append(order, "teardown") })
	var tick func(*Scheduler)
	tick = func(sc *Scheduler) {
		if sc.Now() == 3 {
			order = append(order, "tick")
			return
		}
		sc.After(1, tick)
	}
	s.At(0, tick)
	s.RunAll()
	if len(order) != 2 || order[0] != "teardown" || order[1] != "tick" {
		t.Fatalf("wrong order: %v", order)
	}
}
