// Package simclock implements a deterministic discrete-event simulation
// clock.
//
// The experiments reproduced from the paper run for tens of millions of
// simulated time steps (Fig. 7 reports a 65-million-step run), which is
// only feasible in virtual time. The scheduler orders events by
// (time, sequence) so that simulations are fully deterministic: two runs
// with the same seed and the same schedule produce identical transcripts.
package simclock

import "container/heap"

// Time is a point in virtual time. The unit is whatever the simulation
// chooses (the paper's experiments count voting rounds).
type Time int64

// Event is a scheduled callback. The callback receives the scheduler so
// that it can schedule follow-up events.
type Event func(*Scheduler)

type item struct {
	at  Time
	seq uint64
	fn  Event
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*item)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Scheduler is a deterministic discrete-event scheduler. The zero value
// is not usable; call New.
type Scheduler struct {
	now   Time
	seq   uint64
	queue eventQueue
}

// New returns an empty scheduler at time zero.
func New() *Scheduler {
	return &Scheduler{}
}

// NewAt returns an empty scheduler whose clock starts at t. Checkpoint
// restore uses it to rebuild a simulation mid-flight: events scheduled
// with At for times before t are clamped to t, exactly as they would be
// on a scheduler that had actually run to t.
func NewAt(t Time) *Scheduler {
	return &Scheduler{now: t}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending reports the number of events waiting to run.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Next reports the time of the earliest pending event. ok is false when
// the queue is empty. Checkpointing uses it to run a simulation up to —
// and including — an arbitrary step, horizon conventions aside.
func (s *Scheduler) Next() (t Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// At schedules fn to run at absolute time t. Events scheduled for the
// past run at the current time, preserving FIFO order among same-time
// events.
func (s *Scheduler) At(t Time, fn Event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &item{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d units after the current time.
func (s *Scheduler) After(d Time, fn Event) {
	s.At(s.now+d, fn)
}

// Every schedules fn to run every interval units, starting after one
// interval, until fn returns false. interval must be positive.
func (s *Scheduler) Every(interval Time, fn func(*Scheduler) bool) {
	if interval <= 0 {
		panic("simclock: Every requires a positive interval")
	}
	var tick Event
	tick = func(sc *Scheduler) {
		if fn(sc) {
			sc.After(interval, tick)
		}
	}
	s.After(interval, tick)
}

// Step runs the single earliest event, advancing the clock to its time.
// It reports whether an event was run.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := heap.Pop(&s.queue).(*item)
	s.now = it.at
	it.fn(s)
	return true
}

// Run executes events until the queue is empty or the clock would pass
// horizon (events at exactly horizon still run). It returns the number of
// events executed. A horizon of 0 or less means "no horizon".
func (s *Scheduler) Run(horizon Time) int {
	n := 0
	for len(s.queue) > 0 {
		if horizon > 0 && s.queue[0].at > horizon {
			break
		}
		s.Step()
		n++
	}
	return n
}

// RunAll executes events until the queue is empty and returns the number
// of events executed.
func (s *Scheduler) RunAll() int {
	return s.Run(0)
}
