package simclock

import (
	"testing"
	"testing/quick"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		s.At(at, func(*Scheduler) { order = append(order, at) })
	}
	s.RunAll()
	want := []Time{5, 10, 20, 25, 30}
	if len(order) != len(want) {
		t.Fatalf("ran %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, order[i], want[i], order)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(7, func(*Scheduler) { order = append(order, i) })
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.At(100, func(sc *Scheduler) {
		if sc.Now() != 100 {
			t.Errorf("Now() = %d inside event at 100", sc.Now())
		}
	})
	s.RunAll()
	if s.Now() != 100 {
		t.Fatalf("final Now() = %d, want 100", s.Now())
	}
}

func TestPastEventsRunNow(t *testing.T) {
	s := New()
	var at Time = -1
	s.At(50, func(sc *Scheduler) {
		sc.At(10, func(sc2 *Scheduler) { at = sc2.Now() })
	})
	s.RunAll()
	if at != 50 {
		t.Fatalf("past-scheduled event ran at %d, want 50 (clamped to now)", at)
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at Time
	s.At(10, func(sc *Scheduler) {
		sc.After(5, func(sc2 *Scheduler) { at = sc2.Now() })
	})
	s.RunAll()
	if at != 15 {
		t.Fatalf("After(5) from t=10 ran at %d, want 15", at)
	}
}

func TestEveryStopsWhenFalse(t *testing.T) {
	s := New()
	n := 0
	s.Every(10, func(*Scheduler) bool {
		n++
		return n < 5
	})
	s.RunAll()
	if n != 5 {
		t.Fatalf("Every ran %d times, want 5", n)
	}
	if s.Now() != 50 {
		t.Fatalf("final time %d, want 50", s.Now())
	}
}

func TestEveryPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0, ...) did not panic")
		}
	}()
	New().Every(0, func(*Scheduler) bool { return false })
}

func TestRunHorizon(t *testing.T) {
	s := New()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func(*Scheduler) { ran = append(ran, at) })
	}
	n := s.Run(25)
	if n != 2 {
		t.Fatalf("Run(25) executed %d events, want 2", n)
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	// Events at exactly the horizon run.
	n = s.Run(30)
	if n != 1 {
		t.Fatalf("Run(30) executed %d events, want 1", n)
	}
}

func TestStepOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty scheduler returned true")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var recurse Event
	recurse = func(sc *Scheduler) {
		depth++
		if depth < 100 {
			sc.After(1, recurse)
		}
	}
	s.After(1, recurse)
	s.RunAll()
	if depth != 100 {
		t.Fatalf("nested scheduling depth %d, want 100", depth)
	}
	if s.Now() != 100 {
		t.Fatalf("final time %d, want 100", s.Now())
	}
}

// Property: for any set of event times, execution order is a sorted
// permutation of the input times.
func TestOrderProperty(t *testing.T) {
	f := func(times []int16) bool {
		s := New()
		var ran []Time
		for _, raw := range times {
			at := Time(raw)
			if at < 0 {
				at = -at
			}
			at2 := at
			s.At(at2, func(*Scheduler) { ran = append(ran, at2) })
		}
		s.RunAll()
		if len(ran) != len(times) {
			return false
		}
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 100; j++ {
			s.At(Time(j%17), func(*Scheduler) {})
		}
		s.RunAll()
	}
}
