// Farm state export/import for campaign checkpointing (see
// internal/checkpoint): a snapshot of a running Fig. 7 campaign must
// carry the organ's dimensioning and cumulative counters so a resumed
// run renders transcripts byte-identical to an uninterrupted one.

package voting

import "fmt"

// FarmState is the serializable state of a Farm: its dimensioning and
// cumulative counters. The replicated method and the reusable ballot
// buffer are not state — the method is supplied at construction and the
// buffer's contents are only valid within a round.
type FarmState struct {
	// Replicas is the current organ size.
	Replicas int
	// Rounds and Failures are the cumulative counters Stats reports.
	Rounds, Failures int64
}

// ExportState captures the farm's state for a checkpoint.
func (f *Farm) ExportState() FarmState {
	return FarmState{Replicas: f.n, Rounds: f.rounds, Failures: f.failures}
}

// RestoreState rewinds the farm to a previously exported state. The
// replica count goes through SetReplicas, so an invalid (even,
// non-positive) dimensioning from a corrupt snapshot is rejected rather
// than adopted.
func (f *Farm) RestoreState(st FarmState) error {
	if st.Rounds < 0 || st.Failures < 0 || st.Failures > st.Rounds {
		return fmt.Errorf("voting: invalid farm counters: %d failures over %d rounds",
			st.Failures, st.Rounds)
	}
	if err := f.SetReplicas(st.Replicas); err != nil {
		return err
	}
	f.rounds = st.Rounds
	f.failures = st.Failures
	return nil
}
