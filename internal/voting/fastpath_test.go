package voting

import (
	"testing"
	"testing/quick"

	"aft/internal/xrand"
)

// TestRoundFirstKMatchesRound asserts the fast path is observationally
// identical to the closure path: same ballots, same outcome, same rng
// consumption, for any (seed, n, k).
func TestRoundFirstKMatchesRound(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%7*2 + 3 // odd, 3..15
		k := int(kRaw) % (n + 2)

		slow, err := NewFarm(n, ident)
		if err != nil {
			return false
		}
		fast, err := NewFarm(n, ident)
		if err != nil {
			return false
		}
		slowRng := xrand.New(seed)
		fastRng := xrand.New(seed)
		for round := 0; round < 4; round++ {
			input := seed + uint64(round)
			kk := k
			a := slow.Round(input, func(i int) bool { return i < kk }, slowRng)
			b := fast.RoundFirstK(input, k, fastRng)
			if a.N != b.N || a.HasMajority != b.HasMajority ||
				a.Value != b.Value || a.Dissent != b.Dissent ||
				a.DTOF != b.DTOF || a.Correct != b.Correct {
				return false
			}
			for i := range a.Votes {
				if a.Votes[i] != b.Votes[i] {
					return false
				}
			}
			// Both generators must be in the same state afterwards.
			if slowRng.Uint64() != fastRng.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRoundFirstKZeroAlloc is the allocation regression test of the
// consensus path: a clean round and a storm round must both perform
// zero heap allocations.
func TestRoundFirstKZeroAlloc(t *testing.T) {
	farm, err := NewFarm(7, ident)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)

	input := uint64(0)
	if allocs := testing.AllocsPerRun(10000, func() {
		input++
		farm.RoundFirstK(input, 0, nil)
	}); allocs != 0 {
		t.Fatalf("consensus round allocates %.1f objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10000, func() {
		input++
		farm.RoundFirstK(input, 2, rng)
	}); allocs != 0 {
		t.Fatalf("storm round (k=2) allocates %.1f objects, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10000, func() {
		input++
		farm.RoundFirstK(input, 7, rng)
	}); allocs != 0 {
		t.Fatalf("fully corrupted round allocates %.1f objects, want 0", allocs)
	}
}

// TestTallySmallMatchesMap cross-checks the stack tally against the map
// tally on random ballot multisets drawn from a tiny alphabet (to force
// collisions, ties, and wrong majorities).
func TestTallySmallMatchesMap(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(smallOrgan) + 1
		votes := make([]uint64, n)
		for i := range votes {
			votes[i] = uint64(rng.Intn(4)) // alphabet {0..3}
		}
		golden := uint64(rng.Intn(4))
		a := tallySmall(votes, golden)
		b := tallyMap(votes, golden)
		if a.HasMajority != b.HasMajority || a.Dissent != b.Dissent ||
			a.DTOF != b.DTOF || a.Correct != b.Correct {
			t.Fatalf("tally mismatch on %v golden=%d: small=%+v map=%+v",
				votes, golden, a, b)
		}
		if a.HasMajority && a.Value != b.Value {
			t.Fatalf("majority value mismatch on %v golden=%d: %d vs %d",
				votes, golden, a.Value, b.Value)
		}
	}
}

// TestRoundFirstKVotesAliasBuffer documents the aliasing contract: the
// fast path reuses one buffer across rounds.
func TestRoundFirstKVotesAliasBuffer(t *testing.T) {
	farm, err := NewFarm(3, ident)
	if err != nil {
		t.Fatal(err)
	}
	a := farm.RoundFirstK(1, 0, nil)
	b := farm.RoundFirstK(2, 0, nil)
	if &a.Votes[0] != &b.Votes[0] {
		t.Fatal("fast-path rounds must share the reusable buffer")
	}
	if a.Votes[0] != 2 {
		t.Fatal("earlier outcome must observe the buffer reuse")
	}
}

// TestRoundFirstKAfterResize covers buffer growth across SetReplicas.
func TestRoundFirstKAfterResize(t *testing.T) {
	farm, err := NewFarm(3, ident)
	if err != nil {
		t.Fatal(err)
	}
	if o := farm.RoundFirstK(9, 0, nil); o.N != 3 || !o.Correct {
		t.Fatalf("pre-resize outcome = %+v", o)
	}
	if err := farm.SetReplicas(9); err != nil {
		t.Fatal(err)
	}
	o := farm.RoundFirstK(9, 1, xrand.New(7))
	if o.N != 9 || len(o.Votes) != 9 || !o.Correct || o.Dissent != 1 {
		t.Fatalf("post-resize outcome = %+v", o)
	}
}

func BenchmarkRoundFirstKClean(b *testing.B) {
	f, err := NewFarm(7, ident)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.RoundFirstK(uint64(i), 0, nil)
	}
}

func BenchmarkRoundFirstKWithCorruption(b *testing.B) {
	f, err := NewFarm(7, ident)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.RoundFirstK(uint64(i), 1, rng)
	}
}
