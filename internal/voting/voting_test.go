package voting

import (
	"testing"
	"testing/quick"

	"aft/internal/xrand"
)

func ident(v uint64) uint64 { return v }

// TestFig5DTOFTable reproduces the paper's Fig. 5: a 7-replica organ
// moving from consensus (distance 4) through growing dissent to failure
// (distance 0).
func TestFig5DTOFTable(t *testing.T) {
	tests := []struct {
		m    int
		want int
	}{
		{0, 4}, // (a) consensus: farthest from failure
		{1, 3},
		{2, 2}, // (b)-(c): dissent shrinks the distance
		{3, 1},
		{4, 0}, // (d) no majority possible at m=4 of 7 -> 0 anyway
	}
	for _, tt := range tests {
		if got := DTOF(7, tt.m); got != tt.want {
			t.Errorf("DTOF(7,%d) = %d, want %d", tt.m, got, tt.want)
		}
	}
}

func TestDTOFClamp(t *testing.T) {
	if got := DTOF(3, 3); got != 0 {
		t.Fatalf("DTOF(3,3) = %d, want 0 (clamped)", got)
	}
	if got := DTOF(5, 100); got != 0 {
		t.Fatalf("DTOF(5,100) = %d, want 0", got)
	}
}

func TestMaxDTOF(t *testing.T) {
	for n, want := range map[int]int{1: 1, 3: 2, 5: 3, 7: 4, 9: 5} {
		if got := MaxDTOF(n); got != want {
			t.Errorf("MaxDTOF(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: DTOF is within [0, MaxDTOF(n)] and decreases by exactly 1
// per extra dissenter until it hits 0.
func TestDTOFProperty(t *testing.T) {
	f := func(nRaw, mRaw uint8) bool {
		n := int(nRaw)%15*2 + 1 // odd, 1..29
		m := int(mRaw) % (n + 1)
		d := DTOF(n, m)
		if d < 0 || d > MaxDTOF(n) {
			return false
		}
		if m > 0 {
			prev := DTOF(n, m-1)
			if prev > 0 && prev-d != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewFarmValidation(t *testing.T) {
	if _, err := NewFarm(3, nil); err == nil {
		t.Fatal("nil method accepted")
	}
	if _, err := NewFarm(0, ident); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := NewFarm(4, ident); err == nil {
		t.Fatal("even replicas accepted")
	}
}

func TestSetReplicas(t *testing.T) {
	f, err := NewFarm(3, ident)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicas(7); err != nil {
		t.Fatal(err)
	}
	if f.N() != 7 {
		t.Fatalf("N() = %d", f.N())
	}
	if err := f.SetReplicas(4); err == nil {
		t.Fatal("even resize accepted")
	}
	if err := f.SetReplicas(-1); err == nil {
		t.Fatal("negative resize accepted")
	}
}

func TestCleanRoundConsensus(t *testing.T) {
	f, err := NewFarm(7, ident)
	if err != nil {
		t.Fatal(err)
	}
	o := f.Round(42, nil, nil)
	if !o.HasMajority || o.Value != 42 || !o.Correct {
		t.Fatalf("clean round = %+v", o)
	}
	if o.Dissent != 0 || o.DTOF != 4 {
		t.Fatalf("clean round dissent/dtof = %d/%d, want 0/4", o.Dissent, o.DTOF)
	}
	if o.Failed() {
		t.Fatal("clean round failed")
	}
}

func TestCorruptedMinorityMasked(t *testing.T) {
	f, err := NewFarm(7, ident)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	// Corrupt replicas 0..2 (3 of 7): majority of 4 survives.
	o := f.Round(42, func(i int) bool { return i < 3 }, rng)
	if !o.HasMajority || o.Value != 42 || !o.Correct {
		t.Fatalf("outcome = %+v", o)
	}
	if o.Dissent != 3 || o.DTOF != 1 {
		t.Fatalf("dissent/dtof = %d/%d, want 3/1", o.Dissent, o.DTOF)
	}
}

func TestCorruptedMajorityFails(t *testing.T) {
	f, err := NewFarm(7, ident)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	// Corrupt 4 of 7 with random (distinct) garbage: the correct votes
	// are only 3, no strict majority.
	o := f.Round(42, func(i int) bool { return i < 4 }, rng)
	if o.HasMajority {
		// Random corruption could in principle collide; with this seed it
		// does not.
		t.Fatalf("outcome = %+v, expected no majority", o)
	}
	if o.DTOF != 0 {
		t.Fatalf("failed round DTOF = %d, want 0", o.DTOF)
	}
	if !o.Failed() {
		t.Fatal("Failed() = false on majority loss")
	}
	_, failures := f.Stats()
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
}

func TestWrongMajorityIsFailure(t *testing.T) {
	// If corrupted replicas all agree on the same wrong value and
	// outnumber the correct ones, the organ reports a majority that is
	// not correct — Failed() must be true.
	votes := []uint64{7, 7, 7, 42, 42}
	o := Tally(votes, 42)
	if !o.HasMajority || o.Value != 7 {
		t.Fatalf("tally = %+v", o)
	}
	if o.Correct || !o.Failed() {
		t.Fatal("wrong majority not flagged as failure")
	}
}

func TestTallyTieBreaksTowardGolden(t *testing.T) {
	// With equal counts, prefer golden as "the" candidate value (it
	// cannot reach majority anyway at a tie, but Dissent bookkeeping
	// stays sane).
	votes := []uint64{1, 1, 42, 42}
	o := Tally(votes, 42)
	if o.HasMajority {
		t.Fatalf("tie produced a majority: %+v", o)
	}
	if o.DTOF != 0 {
		t.Fatalf("tie DTOF = %d", o.DTOF)
	}
}

func TestTallyEmpty(t *testing.T) {
	o := Tally(nil, 0)
	if o.N != 0 || o.HasMajority {
		t.Fatalf("empty tally = %+v", o)
	}
}

func TestCorruptValueNeverEqualsGolden(t *testing.T) {
	rng := xrand.New(3)
	for i := 0; i < 1000; i++ {
		g := rng.Uint64()
		if corruptValue(g, rng) == g {
			t.Fatal("corruption produced the golden value")
		}
	}
	if corruptValue(5, nil) == 5 {
		t.Fatal("nil-rng corruption produced the golden value")
	}
}

// Property: with fewer than ceil(n/2) corrupted replicas the organ
// always produces the correct value.
func TestMinorityCorruptionMaskedProperty(t *testing.T) {
	f := func(seed uint64, nRaw, badRaw uint8) bool {
		n := int(nRaw)%7*2 + 3 // odd, 3..15
		maxBad := (n - 1) / 2
		bad := int(badRaw) % (maxBad + 1)
		farm, err := NewFarm(n, ident)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		o := farm.Round(99, func(i int) bool { return i < bad }, rng)
		return o.HasMajority && o.Correct && o.Dissent == bad &&
			o.DTOF == DTOF(n, bad)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DTOF of any outcome equals DTOF(N, Dissent) when a majority
// exists and 0 otherwise.
func TestOutcomeDTOFConsistencyProperty(t *testing.T) {
	f := func(seed uint64, badRaw uint8) bool {
		farm, err := NewFarm(9, ident)
		if err != nil {
			return false
		}
		bad := int(badRaw) % 10
		rng := xrand.New(seed)
		o := farm.Round(7, func(i int) bool { return i < bad }, rng)
		if o.HasMajority {
			return o.DTOF == DTOF(o.N, o.Dissent)
		}
		return o.DTOF == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoundClean(b *testing.B) {
	f, err := NewFarm(7, ident)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Round(uint64(i), nil, nil)
	}
}

func BenchmarkRoundWithCorruption(b *testing.B) {
	f, err := NewFarm(7, ident)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	corrupt := func(i int) bool { return i == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Round(uint64(i), corrupt, rng)
	}
}
