package voting

import (
	"math/bits"
	"testing"

	"aft/internal/xrand"
)

// materialize builds the ballot slice a packed round describes.
func materialize(n int, golden uint64, dissent []uint64, vals []uint64) []uint64 {
	votes := make([]uint64, n)
	rank := 0
	for i := 0; i < n; i++ {
		if dissent[i>>6]&(uint64(1)<<uint(i&63)) != 0 {
			votes[i] = vals[rank]
			rank++
		} else {
			votes[i] = golden
		}
	}
	return votes
}

// assertSameOutcome compares every field but Votes (the packed fast
// paths never materialize a ballot slice).
func assertSameOutcome(t *testing.T, got, want Outcome) {
	t.Helper()
	if got.N != want.N || got.HasMajority != want.HasMajority ||
		got.Value != want.Value || got.Dissent != want.Dissent ||
		got.DTOF != want.DTOF || got.Correct != want.Correct {
		t.Fatalf("packed outcome %+v, scalar %+v", got, want)
	}
}

// TestTallyWordsMatchesTallyRandomized drives TallyWords against the
// scalar Tally over random organ sizes, dissent masks, and value
// populations — including duplicate corrupt values, which is how a
// non-golden value can win a majority.
func TestTallyWordsMatchesTallyRandomized(t *testing.T) {
	rng := xrand.New(0xbadc0de)
	scratch := make([]uint64, 0, 128)
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(100) // crosses the smallOrgan boundary and 64-bit word boundary
		golden := rng.Uint64() & 7
		words := make([]uint64, DissentWords(n))
		for i := range words {
			words[i] = rng.Uint64()
		}
		// Count dissent over the first n bits only; garbage above n
		// must be ignored by TallyWords.
		d := 0
		for i := 0; i < n; i++ {
			if words[i>>6]&(uint64(1)<<uint(i&63)) != 0 {
				d++
			}
		}
		vals := make([]uint64, d)
		for i := range vals {
			// A tiny value domain forces duplicates and golden-vs-corrupt
			// count ties.
			v := rng.Uint64() & 7
			if v == golden {
				v ^= 1
			}
			vals[i] = v
		}
		got := TallyWords(n, golden, words, vals, scratch)
		want := Tally(materialize(n, golden, words, vals), golden)
		assertSameOutcome(t, got, want)
	}
}

// TestTallyWordsFastPaths pins the two popcount-only outcomes.
func TestTallyWordsFastPaths(t *testing.T) {
	words := make([]uint64, 1)

	SetFirstK(words, 0)
	o := TallyWords(5, 42, words, nil, nil)
	assertSameOutcome(t, o, Outcome{N: 5, HasMajority: true, Value: 42, Dissent: 0, DTOF: 3, Correct: true})
	if o.Votes != nil {
		t.Fatalf("unanimous fast path materialized ballots")
	}

	SetFirstK(words, 2)
	o = TallyWords(5, 42, words, []uint64{7, 9}, nil)
	assertSameOutcome(t, o, Outcome{N: 5, HasMajority: true, Value: 42, Dissent: 2, DTOF: 1, Correct: true})
	if o.Votes != nil {
		t.Fatalf("golden-majority fast path materialized ballots")
	}
}

// TestTallyWordsFirstAppearanceTieBreak exercises the fallback where a
// duplicated corrupt value ties or beats golden: the winner must match
// the scalar tally's first-appearance/golden-preference rule exactly.
func TestTallyWordsFirstAppearanceTieBreak(t *testing.T) {
	words := []uint64{0}
	// n=4 (even, direct Tally use): ballots [7 7 42 42] — tie at 2-2,
	// golden (42) must win the tie despite appearing later.
	SetFirstK(words, 2)
	got := TallyWords(4, 42, words, []uint64{7, 7}, nil)
	want := Tally([]uint64{7, 7, 42, 42}, 42)
	assertSameOutcome(t, got, want)
	if got.HasMajority {
		t.Fatalf("2-of-4 is not a strict majority: %+v", got)
	}

	// n=3, corrupt pair outvotes golden: wrong majority, a failed round.
	SetFirstK(words, 2)
	got = TallyWords(3, 42, words, []uint64{7, 7}, nil)
	want = Tally([]uint64{7, 7, 42}, 42)
	assertSameOutcome(t, got, want)
	if !got.HasMajority || got.Correct || got.Value != 7 {
		t.Fatalf("corrupt majority misjudged: %+v", got)
	}
}

// TestTallyWordsScratchReuse verifies the fallback writes into the
// caller's scratch buffer when it is large enough (the batch engine's
// zero-allocation contract) and allocates only when it is not.
func TestTallyWordsScratchReuse(t *testing.T) {
	words := []uint64{0}
	SetFirstK(words, 3)
	scratch := make([]uint64, 8)
	vals := []uint64{7, 7, 7}
	o := TallyWords(3, 42, words, vals, scratch)
	if &o.Votes[0] != &scratch[0] {
		t.Fatalf("fallback did not reuse scratch")
	}
	allocs := testing.AllocsPerRun(200, func() {
		TallyWords(3, 42, words, vals, scratch)
	})
	if allocs != 0 {
		t.Fatalf("TallyWords with adequate scratch allocates %v/op", allocs)
	}
}

// TestSetFirstK pins the packing of the storm corruption pattern.
func TestSetFirstK(t *testing.T) {
	words := make([]uint64, 2)
	SetFirstK(words, 70)
	if words[0] != ^uint64(0) || bits.OnesCount64(words[1]) != 6 || words[1] != (1<<6)-1 {
		t.Fatalf("SetFirstK(70) = %x", words)
	}
	SetFirstK(words, 0)
	if words[0] != 0 || words[1] != 0 {
		t.Fatalf("SetFirstK(0) left bits: %x", words)
	}
	SetFirstK(words, 1000) // clamped to capacity
	if words[0] != ^uint64(0) || words[1] != ^uint64(0) {
		t.Fatalf("SetFirstK(clamped) = %x", words)
	}
}
