package voting

import (
	"testing"

	"aft/internal/xrand"
)

// TestColludingMajorityElectsWrongValue is the point of the model: a
// colluding group of more than n/2 replicas elects a wrong majority,
// where the same number of independently-failing replicas almost never
// agrees on one wrong value.
func TestColludingMajorityElectsWrongValue(t *testing.T) {
	farm, err := NewFarm(5, ident)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	o := farm.RoundColluding(42, 3, rng)
	if !o.HasMajority {
		t.Fatalf("3 of 5 colluders did not form a majority: %+v", o)
	}
	if o.Correct {
		t.Fatalf("colluding majority reported the correct value: %+v", o)
	}
	if !o.Failed() {
		t.Fatal("wrong-majority round not counted as failed")
	}
	if o.Votes[0] != o.Votes[1] || o.Votes[1] != o.Votes[2] {
		t.Fatalf("colluders did not share one value: %v", o.Votes)
	}
	if o.Votes[0] == 42 {
		t.Fatal("colluders voted the golden value")
	}

	// The independent storm of the same intensity: three distinct wrong
	// values, no majority for any of them — detectable dissent instead
	// of a silent wrong consensus.
	indep := farm.RoundFirstK(42, 3, xrand.New(1))
	if indep.HasMajority && !indep.Correct {
		t.Fatalf("independent faults happened to collude under seed 1; pick another seed: %v", indep.Votes)
	}
}

// TestColludingMinorityIsOutvoted: a colluding group below the
// majority threshold is outvoted like any other dissent, but with the
// whole group stacked on one value the dissent is maximally
// concentrated.
func TestColludingMinorityIsOutvoted(t *testing.T) {
	farm, err := NewFarm(7, ident)
	if err != nil {
		t.Fatal(err)
	}
	o := farm.RoundColluding(7, 3, xrand.New(2))
	if !o.HasMajority || !o.Correct {
		t.Fatalf("4 honest of 7 lost the vote: %+v", o)
	}
	if o.Dissent != 3 {
		t.Fatalf("dissent %d, want 3", o.Dissent)
	}
}

// TestColludingSharedParity: RoundColluding and RoundShared (the
// fused and reference idioms) produce identical outcomes and identical
// rng consumption from the same state — the property the scenario
// differential replay depends on.
func TestColludingSharedParity(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3, 5, 7, 9} {
		fused, err := NewFarm(7, ident)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewFarm(7, ident)
		if err != nil {
			t.Fatal(err)
		}
		a, b := xrand.New(99), xrand.New(99)
		for round := uint64(0); round < 50; round++ {
			fo := fused.RoundColluding(round, k, a)
			kk := k
			ro := ref.RoundShared(round, func(i int) bool { return i < kk }, b)
			if fo.HasMajority != ro.HasMajority || fo.Value != ro.Value ||
				fo.Dissent != ro.Dissent || fo.DTOF != ro.DTOF || fo.Correct != ro.Correct {
				t.Fatalf("k=%d round %d: fused %+v vs reference %+v", k, round, fo, ro)
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("k=%d round %d: rng streams diverged", k, round)
			}
			// Re-sync after the probe draw.
			a, b = xrand.New(round), xrand.New(round)
		}
	}
}

// TestColludingClampsK mirrors RoundFirstK's clamping contract.
func TestColludingClampsK(t *testing.T) {
	farm, err := NewFarm(3, ident)
	if err != nil {
		t.Fatal(err)
	}
	if o := farm.RoundColluding(1, -4, xrand.New(3)); o.Failed() {
		t.Fatalf("negative k corrupted the round: %+v", o)
	}
	o := farm.RoundColluding(1, 100, xrand.New(3))
	if !o.Failed() || o.Dissent != 0 {
		// All replicas collude: unanimous wrong consensus.
		t.Fatalf("over-dimensioned k did not corrupt every replica: %+v", o)
	}
}

// TestColludingZeroKConsumesNoRandomness: rng is untouched when no
// replica colludes, so fused and reference streams stay aligned across
// calm rounds.
func TestColludingZeroKConsumesNoRandomness(t *testing.T) {
	farm, err := NewFarm(3, ident)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	before := rng.State()
	farm.RoundColluding(5, 0, rng)
	farm.RoundShared(5, nil, rng)
	farm.RoundShared(5, func(int) bool { return false }, rng)
	if rng.State() != before {
		t.Fatal("calm round consumed randomness")
	}
}
