// Package voting implements the replication-and-voting service of the
// paper's §3.3: a "restoring organ" in the style of the EFTOS Voting
// Farm, set up "after the user supplied the number of replicas and the
// method to replicate".
//
// After each voting round the package computes the paper's
// distance-to-failure
//
//	dtof(n, m) = ceil(n/2) − m
//
// where n is the number of replicas and m the number of votes that
// differ from the majority; dtof is 0 when no majority exists. dtof lies
// in [0, ceil(n/2)]: the maximum is reached at full consensus, and the
// larger the dissent the closer the organ is to failure (Fig. 5). The
// autonomic controller of package redundancy consumes these outcomes.
package voting

import (
	"fmt"

	"aft/internal/xrand"
)

// Method is the user-supplied computation to replicate.
type Method func(input uint64) uint64

// DTOF computes the paper's distance-to-failure for n replicas of which
// m dissent from the majority. Callers must pass m = n (or any m ≥
// ceil(n/2)) when no majority exists; the result is clamped to 0.
func DTOF(n, m int) int {
	d := (n+1)/2 - m
	if d < 0 {
		return 0
	}
	return d
}

// MaxDTOF returns the distance at full consensus, ceil(n/2).
func MaxDTOF(n int) int { return (n + 1) / 2 }

// Outcome reports one voting round.
type Outcome struct {
	// N is the number of replicas that voted.
	N int
	// Votes are the raw ballots, one per replica.
	Votes []uint64
	// HasMajority reports whether any value got a strict majority
	// (> n/2 identical votes).
	HasMajority bool
	// Value is the majority value when HasMajority.
	Value uint64
	// Dissent is m: the number of votes differing from the majority
	// value. When no majority exists it equals N.
	Dissent int
	// DTOF is the distance-to-failure of this round.
	DTOF int
	// Correct reports whether the majority value equals the golden
	// (fault-free) result of the replicated method.
	Correct bool
}

// Failed reports whether the round failed to produce a correct majority,
// either because no majority existed or because the majority was wrong.
func (o Outcome) Failed() bool { return !o.HasMajority || !o.Correct }

// Farm is the restoring organ: n replicas of a method plus a majority
// voter.
type Farm struct {
	method Method
	n      int
	// buf is the reusable ballot buffer of the allocation-free fast path
	// (RoundFirstK). It is sized by SetReplicas and never shrinks, so the
	// 65-million-round campaigns of Fig. 7 run without per-round garbage.
	buf []uint64

	rounds   int64
	failures int64
}

// NewFarm builds a restoring organ with n replicas of method. n must be
// positive and odd (an even organ wastes a replica without improving the
// vote; the paper's experiments use 3–9).
func NewFarm(n int, method Method) (*Farm, error) {
	if method == nil {
		return nil, fmt.Errorf("voting: nil method")
	}
	f := &Farm{method: method}
	if err := f.SetReplicas(n); err != nil {
		return nil, err
	}
	return f, nil
}

// N reports the current number of replicas.
func (f *Farm) N() int { return f.n }

// SetReplicas resizes the organ. The new count must be positive and odd.
func (f *Farm) SetReplicas(n int) error {
	if n <= 0 {
		return fmt.Errorf("voting: replica count %d must be positive", n)
	}
	if n%2 == 0 {
		return fmt.Errorf("voting: replica count %d must be odd", n)
	}
	f.n = n
	if cap(f.buf) < n {
		f.buf = make([]uint64, n)
	}
	return nil
}

// Round executes one replicated computation and vote. corrupted reports,
// for each replica index, whether the environment corrupts that
// replica's result this round (nil means no corruption). rng supplies
// the corrupted values; it may be nil when corrupted is nil.
func (f *Farm) Round(input uint64, corrupted func(i int) bool, rng *xrand.Rand) Outcome {
	golden := f.method(input)
	votes := make([]uint64, f.n)
	for i := range votes {
		votes[i] = golden
		if corrupted != nil && corrupted(i) {
			votes[i] = corruptValue(golden, rng)
		}
	}
	o := tally(votes, golden)
	f.rounds++
	if o.Failed() {
		f.failures++
	}
	return o
}

// RoundFirstK executes one replicated computation where the environment
// corrupts the first k replicas — the storm model of the §3.3
// experiments, where a disturbance of intensity k hits k replicas at
// once. It is the allocation-free fast path behind the campaign engine:
// ballots are written into the farm's reusable buffer and tallied
// without a map, so a consensus round performs zero heap allocations.
//
// The returned Outcome's Votes slice aliases the reusable buffer and is
// only valid until the next round on this farm. rng supplies the
// corrupted values; it may be nil when k == 0. The ballot values and the
// rng consumption are identical to Round(input, func(i int) bool
// { return i < k }, rng).
func (f *Farm) RoundFirstK(input uint64, k int, rng *xrand.Rand) Outcome {
	golden := f.method(input)
	votes := f.buf[:f.n]
	if k > f.n {
		k = f.n
	}
	if k < 0 {
		k = 0
	}
	for i := 0; i < k; i++ {
		votes[i] = corruptValue(golden, rng)
	}
	for i := k; i < f.n; i++ {
		votes[i] = golden
	}
	o := tally(votes, golden)
	f.rounds++
	if o.Failed() {
		f.failures++
	}
	return o
}

// RoundColluding executes one replicated computation where the first k
// replicas are a colluding (Byzantine) voter group: instead of failing
// independently, all k submit the same wrong value, drawn once from
// rng. A group of more than n/2 colluders therefore elects a wrong
// majority that an independent-fault storm of the same intensity almost
// never produces — the fault model behind the chaos harness's
// "collude" phases.
//
// Like RoundFirstK, ballots go through the farm's reusable buffer (the
// returned Votes alias it) and k is clamped to [0, n]. rng is consumed
// exactly once when k > 0, whatever k is.
func (f *Farm) RoundColluding(input uint64, k int, rng *xrand.Rand) Outcome {
	golden := f.method(input)
	votes := f.buf[:f.n]
	if k > f.n {
		k = f.n
	}
	if k < 0 {
		k = 0
	}
	if k > 0 {
		shared := corruptValue(golden, rng)
		for i := 0; i < k; i++ {
			votes[i] = shared
		}
	}
	for i := k; i < f.n; i++ {
		votes[i] = golden
	}
	o := tally(votes, golden)
	f.rounds++
	if o.Failed() {
		f.failures++
	}
	return o
}

// RoundShared is the reference-loop idiom of RoundColluding: corrupted
// reports, per replica index, membership in the colluding group, and
// every member casts the same wrong value, drawn once from rng on the
// first corrupted replica. Ballots are heap-allocated per round, like
// Round. The ballot values and the rng consumption are identical to
// RoundColluding(input, k, rng) when corrupted is i < k, which is what
// the differential replay asserts.
func (f *Farm) RoundShared(input uint64, corrupted func(i int) bool, rng *xrand.Rand) Outcome {
	golden := f.method(input)
	votes := make([]uint64, f.n)
	drawn := false
	var shared uint64
	for i := range votes {
		votes[i] = golden
		if corrupted != nil && corrupted(i) {
			if !drawn {
				shared = corruptValue(golden, rng)
				drawn = true
			}
			votes[i] = shared
		}
	}
	o := tally(votes, golden)
	f.rounds++
	if o.Failed() {
		f.failures++
	}
	return o
}

// corruptValue produces a value guaranteed to differ from golden.
func corruptValue(golden uint64, rng *xrand.Rand) uint64 {
	if rng == nil {
		return golden ^ 0xDEADBEEFDEADBEEF
	}
	v := rng.Uint64()
	for v == golden {
		v = rng.Uint64()
	}
	return v
}

// smallOrgan is the largest organ tallied on the stack. The paper's
// experiments use 3–9 replicas; anything within smallOrgan tallies with
// zero heap allocations, larger organs fall back to a map.
const smallOrgan = 16

// tally computes the round outcome from raw ballots.
func tally(votes []uint64, golden uint64) Outcome {
	n := len(votes)
	// Fast path: unanimous golden consensus, the overwhelmingly common
	// case in the 65-million-round Fig. 7 experiment.
	allGolden := true
	for _, v := range votes {
		if v != golden {
			allGolden = false
			break
		}
	}
	if allGolden {
		return Outcome{
			N: n, Votes: votes, HasMajority: true, Value: golden,
			Dissent: 0, DTOF: MaxDTOF(n), Correct: true,
		}
	}
	if n <= smallOrgan {
		return tallySmall(votes, golden)
	}
	return tallyMap(votes, golden)
}

// tallySmall counts distinct ballot values in fixed-size stack arrays —
// no map, no heap. Every storm round lands here: the organ holds at most
// 9 replicas in the paper's regime, so at most 9 distinct values appear
// (and in the common dissent shapes only 2).
func tallySmall(votes []uint64, golden uint64) Outcome {
	var vals [smallOrgan]uint64
	var counts [smallOrgan]int
	distinct := 0
	for _, v := range votes {
		found := false
		for j := 0; j < distinct; j++ {
			if vals[j] == v {
				counts[j]++
				found = true
				break
			}
		}
		if !found {
			vals[distinct] = v
			counts[distinct] = 1
			distinct++
		}
	}
	bestVal, bestCount := uint64(0), 0
	for j := 0; j < distinct; j++ {
		if counts[j] > bestCount || (counts[j] == bestCount && vals[j] == golden) {
			bestVal, bestCount = vals[j], counts[j]
		}
	}
	return finishTally(votes, golden, bestVal, bestCount)
}

// tallyMap is the fallback for organs larger than smallOrgan.
func tallyMap(votes []uint64, golden uint64) Outcome {
	counts := make(map[uint64]int, 2)
	for _, v := range votes {
		counts[v]++
	}
	// Select the winner by scanning votes — first-appearance order, the
	// same tie-break the stack path uses — never by ranging the map: on
	// a count tie between non-golden values, map order would pick the
	// winner.
	bestVal, bestCount := uint64(0), 0
	for _, v := range votes {
		if c := counts[v]; c > bestCount || (c == bestCount && v == golden) {
			bestVal, bestCount = v, c
		}
	}
	return finishTally(votes, golden, bestVal, bestCount)
}

// finishTally derives the Outcome from the winning candidate.
func finishTally(votes []uint64, golden, bestVal uint64, bestCount int) Outcome {
	n := len(votes)
	o := Outcome{N: n, Votes: votes}
	if bestCount > n/2 {
		o.HasMajority = true
		o.Value = bestVal
		o.Dissent = n - bestCount
		o.Correct = bestVal == golden
	} else {
		o.Dissent = n
	}
	o.DTOF = DTOF(n, o.Dissent)
	if !o.HasMajority {
		o.DTOF = 0
	}
	return o
}

// Tally exposes the vote-counting core for tests and for harnesses that
// generate ballots themselves.
func Tally(votes []uint64, golden uint64) Outcome {
	if len(votes) == 0 {
		return Outcome{}
	}
	return tally(votes, golden)
}

// Stats reports the cumulative number of rounds and failed rounds.
func (f *Farm) Stats() (rounds, failures int64) {
	return f.rounds, f.failures
}
