package voting_test

import (
	"fmt"

	"aft/internal/voting"
	"aft/internal/xrand"
)

// ExampleDTOF reproduces the paper's Fig. 5 table for a 7-replica
// restoring organ.
func ExampleDTOF() {
	for m := 0; m <= 4; m++ {
		fmt.Printf("m=%d dtof=%d\n", m, voting.DTOF(7, m))
	}
	// Output:
	// m=0 dtof=4
	// m=1 dtof=3
	// m=2 dtof=2
	// m=3 dtof=1
	// m=4 dtof=0
}

// ExampleFarm_Round shows one voting round with a corrupted minority.
func ExampleFarm_Round() {
	farm, _ := voting.NewFarm(5, func(v uint64) uint64 { return v * v })
	rng := xrand.New(1)
	o := farm.Round(6, func(i int) bool { return i == 0 }, rng)
	fmt.Printf("value=%d correct=%v dissent=%d dtof=%d\n",
		o.Value, o.Correct, o.Dissent, o.DTOF)
	// Output:
	// value=36 correct=true dissent=1 dtof=2
}
