// Packed-ballot tallying: the bitset fast path behind the batch
// campaign engine (internal/experiments/batch.go).
//
// A batch round does not materialize one ballot word per replica. It
// records which replicas dissent as a bitmask in []uint64 words, plus
// the dissenting values in rank order, and tallies with popcount
// (math/bits.OnesCount64): when the golden value holds a strict
// majority — every round of the paper's campaigns outside a heavy storm
// peak — the outcome is fully determined by the dissent count alone.
// Only when golden lacks a strict majority are the ballots materialized
// and handed to the exact scalar tally, so the tie-break semantics
// (first-appearance order, golden preferred on count ties) are shared
// with Round/RoundFirstK by construction, not by reimplementation.

package voting

import (
	"fmt"
	"math/bits"

	"aft/internal/xrand"
)

// DissentWords returns how many uint64 words a dissent bitmask for n
// replicas occupies.
func DissentWords(n int) int { return (n + 63) / 64 }

// SetFirstK writes the first-K corruption pattern of the §3.3 storm
// model into a dissent bitmask: bits 0..k-1 set, every other bit (and
// every remaining word) cleared. k is clamped to [0, 64*len(words)].
func SetFirstK(words []uint64, k int) {
	if k < 0 {
		k = 0
	}
	if max := 64 * len(words); k > max {
		k = max
	}
	for i := range words {
		switch {
		case k >= 64:
			words[i] = ^uint64(0)
			k -= 64
		case k > 0:
			words[i] = (uint64(1) << uint(k)) - 1
			k = 0
		default:
			words[i] = 0
		}
	}
}

// CorruptValue draws a corrupted ballot value guaranteed to differ from
// golden, consuming rng exactly as the scalar voting paths do (retry
// while the draw collides with golden). A nil rng yields the fixed
// golden^0xDEADBEEFDEADBEEF marker, as in Round with a nil generator.
func CorruptValue(golden uint64, rng *xrand.Rand) uint64 {
	return corruptValue(golden, rng)
}

// TallyWords computes a round outcome from a packed ballot: n replicas,
// of which the ones whose bit is set in dissent voted a non-golden
// value, and the rest voted golden. vals holds the dissenting values in
// bit-rank order (vals[0] is the value of the lowest set bit) and must
// have exactly popcount(dissent) entries over the first n bits; bits at
// positions >= n are ignored.
//
// The outcome is identical, field for field except Votes, to
// Tally(ballots, golden) over the materialized ballot slice. On the two
// popcount fast paths (unanimous consensus, golden strict majority)
// Votes is nil — no ballot slice ever exists. On the no-golden-majority
// fallback the ballots are materialized into scratch (reused when its
// capacity is at least n, freshly allocated otherwise) and Votes
// aliases it.
func TallyWords(n int, golden uint64, dissent []uint64, vals []uint64, scratch []uint64) Outcome {
	if n <= 0 {
		return Outcome{}
	}
	if need := DissentWords(n); len(dissent) < need {
		panic(fmt.Sprintf("voting: TallyWords: %d dissent words for %d replicas, need %d",
			len(dissent), n, need))
	}
	// Column-sum the dissent bits with popcount, masking the partial
	// final word so stray bits beyond n cannot inflate the count.
	d := 0
	full := n / 64
	for i := 0; i < full; i++ {
		d += bits.OnesCount64(dissent[i])
	}
	if tail := uint(n % 64); tail != 0 {
		d += bits.OnesCount64(dissent[full] & ((uint64(1) << tail) - 1))
	}
	if len(vals) != d {
		panic(fmt.Sprintf("voting: TallyWords: %d dissent values for %d set bits", len(vals), d))
	}
	if d == 0 {
		// Unanimous golden consensus — the same outcome tally's
		// all-golden fast path produces.
		return Outcome{
			N: n, HasMajority: true, Value: golden,
			Dissent: 0, DTOF: MaxDTOF(n), Correct: true,
		}
	}
	if n-d > n/2 {
		// Golden holds a strict majority outright: no dissenting value
		// can reach its count (each has at most d < n-d votes), so the
		// scalar tally would elect golden with bestCount = n-d.
		return Outcome{
			N: n, HasMajority: true, Value: golden,
			Dissent: d, DTOF: DTOF(n, d), Correct: true,
		}
	}
	// Golden lacks a strict majority (heavy corruption, or duplicate
	// corrupt values could outvote it): materialize the ballots in
	// replica order and run the exact scalar tally, inheriting its
	// first-appearance tie-break.
	votes := scratch
	if cap(votes) < n {
		votes = make([]uint64, n)
	}
	votes = votes[:n]
	rank := 0
	for i := 0; i < n; i++ {
		if dissent[i>>6]&(uint64(1)<<uint(i&63)) != 0 {
			votes[i] = vals[rank]
			rank++
		} else {
			votes[i] = golden
		}
	}
	return tally(votes, golden)
}
