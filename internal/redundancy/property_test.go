package redundancy

import (
	"testing"
	"testing/quick"

	"aft/internal/voting"
	"aft/internal/xrand"
)

// Property: under any sequence of outcomes, the controller's N stays
// odd and within [Min, Max], and quiet streaks never exceed LowerAfter.
func TestControllerInvariantsProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		p := Policy{Min: 3, Max: 11, CriticalDTOF: 1, Step: 2, LowerAfter: 7}
		c, err := NewController(p, 3)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		for i := 0; i < int(steps)+50; i++ {
			n := c.N()
			dissent := rng.Intn(n + 1)
			c.Observe(outcome(n, dissent))
			if c.N() < p.Min || c.N() > p.Max || c.N()%2 == 0 {
				return false
			}
			if c.QuietRuns() >= p.LowerAfter {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the controller never lowers redundancy in the same round it
// observed dissent, for any outcome stream.
func TestNoLoweringUnderDissentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := Policy{Min: 3, Max: 9, CriticalDTOF: 1, Step: 2, LowerAfter: 5}
		c, err := NewController(p, 9)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		for i := 0; i < 200; i++ {
			dissent := rng.Intn(c.N() + 1)
			dir, changed := c.Observe(outcome(c.N(), dissent))
			if changed && dir == Lower && dissent != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the switchboard's farm size always equals the controller's
// target after every step — the signed-message transport loses nothing.
func TestSwitchboardCoherenceProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
		if err != nil {
			return false
		}
		sb, err := NewSwitchboard(farm, Policy{
			Min: 3, Max: 9, CriticalDTOF: 1, Step: 2, LowerAfter: 4,
		}, []byte("coherence"))
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		for i := 0; i < int(steps)+20; i++ {
			k := rng.Intn(3) // 0..2 corrupted replicas
			var corrupted func(int) bool
			if k > 0 {
				kk := k
				corrupted = func(j int) bool { return j < kk }
			}
			sb.Step(uint64(i), corrupted, rng)
			if farm.N() != sb.Controller().N() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
