package redundancy

import (
	"testing"

	"aft/internal/voting"
	"aft/internal/xrand"
)

func faultySwitchboard(t *testing.T) *Switchboard {
	t.Helper()
	farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSwitchboard(farm, DefaultPolicy(), []byte("faulty"))
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

// TestStepFaultyFlagsOffEqualsStepFirstK: with collude and partitioned
// both false, StepFaulty is operation-for-operation StepFirstK — same
// outcomes, same resizes, same nonce stream, same rng consumption.
// The scenario runner routes every organ round through StepFaulty, so
// this equivalence is what keeps the pre-existing golden transcripts
// valid.
func TestStepFaultyFlagsOffEqualsStepFirstK(t *testing.T) {
	a, b := faultySwitchboard(t), faultySwitchboard(t)
	ra, rb := xrand.New(7), xrand.New(7)
	for step := uint64(0); step < 200; step++ {
		k := int(step % 5) // sweeps 0..4 across a 3..9 band
		oa, resA := a.StepFaulty(step, k, false, false, ra)
		ob, resB := b.StepFirstK(step, k, rb)
		if resA != resB || oa.Failed() != ob.Failed() || oa.DTOF != ob.DTOF || oa.N != ob.N {
			t.Fatalf("step %d diverged: %+v/%v vs %+v/%v", step, oa, resA, ob, resB)
		}
	}
	if a.Resizes() != b.Resizes() || a.LastNonce() != b.LastNonce() {
		t.Fatalf("switchboards diverged: resizes %d/%d nonce %d/%d",
			a.Resizes(), b.Resizes(), a.LastNonce(), b.LastNonce())
	}
	if ra.State() != rb.State() {
		t.Fatal("rng streams diverged")
	}
}

// TestStepFaultyPartitionSkipsObservation: a partitioned round still
// votes (the replicas run regardless of the control link) but the
// controller neither updates its streaks nor resizes — the organ stays
// frozen at its current dimensioning however bad the rounds get.
func TestStepFaultyPartitionSkipsObservation(t *testing.T) {
	sb := faultySwitchboard(t)
	rng := xrand.New(11)
	for step := uint64(0); step < 50; step++ {
		// Every replica corrupted: dtof 0, a guaranteed raise trigger.
		o, resized := sb.StepFaulty(step, 3, false, true, rng)
		if !o.Failed() {
			t.Fatalf("step %d: fully corrupted round succeeded: %+v", step, o)
		}
		if resized {
			t.Fatalf("step %d: partitioned round resized", step)
		}
	}
	if sb.Resizes() != 0 || sb.LastNonce() != 0 {
		t.Fatalf("partitioned rounds reached the controller: resizes=%d nonce=%d",
			sb.Resizes(), sb.LastNonce())
	}
	// Link restored: the same disturbance now raises immediately.
	if _, resized := sb.StepFaulty(50, 3, false, false, rng); !resized {
		t.Fatal("restored link did not resize on a critical round")
	}
	if sb.Farm().N() != 3+DefaultPolicy().Step {
		t.Fatalf("raise did not land: n=%d", sb.Farm().N())
	}
}

// TestStepFaultyCollusionBeatsIndependence: on a 3-replica organ, two
// colluders elect a wrong majority (silent failure, dtof 0 invisible)
// while two independent corruptions produce detectable total dissent.
func TestStepFaultyCollusionBeatsIndependence(t *testing.T) {
	col := faultySwitchboard(t)
	o, _ := col.StepFaulty(1, 2, true, false, xrand.New(13))
	if !o.HasMajority || o.Correct {
		t.Fatalf("2-of-3 colluders did not elect a wrong majority: %+v", o)
	}
	ind := faultySwitchboard(t)
	o, _ = ind.StepFaulty(1, 2, false, false, xrand.New(13))
	if o.HasMajority {
		t.Fatalf("2 independent corruptions agreed under seed 13; pick another seed: %+v", o)
	}
}

// TestStepFaultyRefParity: the fused and reference idioms agree
// outcome-for-outcome and resize-for-resize across the full flag
// matrix, from identical rng states.
func TestStepFaultyRefParity(t *testing.T) {
	cases := []struct {
		name               string
		collude, partition bool
	}{
		{"plain", false, false},
		{"collude", true, false},
		{"partition", false, true},
		{"collude+partition", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fused, ref := faultySwitchboard(t), faultySwitchboard(t)
			ra, rb := xrand.New(17), xrand.New(17)
			for step := uint64(0); step < 100; step++ {
				k := int(step % 4)
				oa, resA := fused.StepFaulty(step, k, tc.collude, tc.partition, ra)
				ob, resB := ref.StepFaultyRef(step, k, tc.collude, tc.partition, rb)
				if resA != resB || oa.Failed() != ob.Failed() || oa.DTOF != ob.DTOF ||
					oa.Value != ob.Value || oa.Dissent != ob.Dissent {
					t.Fatalf("step %d: fused %+v/%v vs reference %+v/%v", step, oa, resA, ob, resB)
				}
			}
			if fused.Resizes() != ref.Resizes() || fused.LastNonce() != ref.LastNonce() {
				t.Fatalf("engines diverged: resizes %d/%d nonce %d/%d",
					fused.Resizes(), ref.Resizes(), fused.LastNonce(), ref.LastNonce())
			}
			if ra.State() != rb.State() {
				t.Fatal("rng streams diverged")
			}
		})
	}
}
