package redundancy

import (
	"errors"
	"testing"

	"aft/internal/voting"
	"aft/internal/xrand"
)

func newTestSwitchboard(t *testing.T) *Switchboard {
	t.Helper()
	farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSwitchboard(farm, DefaultPolicy(), []byte("replay-test-key"))
	if err != nil {
		t.Fatal(err)
	}
	return sb
}

// TestReplayedResizeRejected is the replay attack: a correctly signed
// request is captured and delivered twice. The first delivery applies;
// the exact replay must be rejected with ErrReplayedNonce and counted.
func TestReplayedResizeRejected(t *testing.T) {
	sb := newTestSwitchboard(t)
	req := SignResize([]byte("replay-test-key"), 5, Raise, 1)

	if err := sb.Apply(req); err != nil {
		t.Fatalf("first delivery rejected: %v", err)
	}
	if sb.Farm().N() != 5 {
		t.Fatalf("farm at %d after resize, want 5", sb.Farm().N())
	}
	err := sb.Apply(req)
	if !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("replay error = %v, want ErrReplayedNonce", err)
	}
	if sb.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", sb.Rejected())
	}
	if sb.Resizes() != 1 {
		t.Fatalf("Resizes() = %d, want 1 (replay must not re-apply)", sb.Resizes())
	}
}

// TestStaleNonceRejected covers the out-of-order case: once nonce 7 is
// accepted, any earlier (stale) message — even a never-seen one — is
// refused, so captured messages cannot be re-injected later.
func TestStaleNonceRejected(t *testing.T) {
	sb := newTestSwitchboard(t)
	key := []byte("replay-test-key")

	if err := sb.Apply(SignResize(key, 5, Raise, 7)); err != nil {
		t.Fatalf("nonce 7 rejected: %v", err)
	}
	if err := sb.Apply(SignResize(key, 7, Raise, 3)); !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("stale nonce error = %v, want ErrReplayedNonce", err)
	}
	if got := sb.LastNonce(); got != 7 {
		t.Fatalf("LastNonce() = %d, want 7", got)
	}
	// A strictly newer nonce is still welcome.
	if err := sb.Apply(SignResize(key, 7, Raise, 8)); err != nil {
		t.Fatalf("nonce 8 rejected after stale attempt: %v", err)
	}
}

// TestForgedResizeRejected keeps the original MAC check intact under the
// new delivery path, and rejections of any cause share the counter.
func TestForgedResizeRejected(t *testing.T) {
	sb := newTestSwitchboard(t)
	req := SignResize([]byte("wrong-key"), 5, Raise, 1)
	if err := sb.Apply(req); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("forged request error = %v, want ErrBadMAC", err)
	}
	// Tampering after signing must also fail.
	good := SignResize([]byte("replay-test-key"), 5, Raise, 1)
	good.NewN = 9
	if err := sb.Apply(good); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered request error = %v, want ErrBadMAC", err)
	}
	if sb.Rejected() != 2 {
		t.Fatalf("Rejected() = %d, want 2", sb.Rejected())
	}
	if sb.Farm().N() != 3 {
		t.Fatalf("farm resized to %d by rejected messages", sb.Farm().N())
	}
}

// TestApplySyncsController asserts an externally applied resize updates
// the controller too, so its next decision starts from the dimensioning
// actually in force.
func TestApplySyncsController(t *testing.T) {
	sb := newTestSwitchboard(t)
	if err := sb.Apply(SignResize([]byte("replay-test-key"), 7, Raise, 1)); err != nil {
		t.Fatal(err)
	}
	if sb.Controller().N() != 7 {
		t.Fatalf("controller at %d after external resize, want 7", sb.Controller().N())
	}
}

// TestApplyRejectsOutOfBandDimensioning: an authenticated request may
// still not push the organ outside the policy band (the campaign
// engine's occupancy buffer is sized by Policy.Max).
func TestApplyRejectsOutOfBandDimensioning(t *testing.T) {
	sb := newTestSwitchboard(t)
	key := []byte("replay-test-key")
	if err := sb.Apply(SignResize(key, 11, Raise, 1)); err == nil {
		t.Fatal("resize above Policy.Max accepted")
	}
	if err := sb.Apply(SignResize(key, 1, Lower, 2)); err == nil {
		t.Fatal("resize below Policy.Min accepted")
	}
	if sb.Rejected() != 2 || sb.Farm().N() != 3 {
		t.Fatalf("rejected=%d farm=%d, want 2 and 3", sb.Rejected(), sb.Farm().N())
	}
}

// TestSelfDeliveryAfterExternalNonceJump: accepting an external message
// with a huge nonce must not wedge the switchboard's own revisions —
// self-issued messages sign with lastNonce+1, sharing the nonce space.
func TestSelfDeliveryAfterExternalNonceJump(t *testing.T) {
	sb := newTestSwitchboard(t)
	if err := sb.Apply(SignResize([]byte("replay-test-key"), 5, Raise, 1<<40)); err != nil {
		t.Fatal(err)
	}
	// Force a controller-issued raise: a no-majority round is critical.
	rng := xrand.New(5)
	var resized bool
	for i := 0; i < 100 && !resized; i++ {
		_, resized = sb.StepFirstK(uint64(i), 5, rng)
	}
	if !resized {
		t.Fatal("controller never resized after external nonce jump")
	}
	if sb.Farm().N() != 7 {
		t.Fatalf("farm at %d after raise, want 7", sb.Farm().N())
	}
	if got := sb.LastNonce(); got != 1<<40+1 {
		t.Fatalf("LastNonce() = %d, want %d", got, uint64(1<<40+1))
	}
}

// TestMaxNonceReserved: the all-ones nonce must be refused — accepting
// it would leave no successor for self-issued revisions (lastNonce+1
// wraps to 0) and wedge the switchboard permanently.
func TestMaxNonceReserved(t *testing.T) {
	sb := newTestSwitchboard(t)
	err := sb.Apply(SignResize([]byte("replay-test-key"), 5, Raise, ^uint64(0)))
	if !errors.Is(err, ErrReplayedNonce) {
		t.Fatalf("max-nonce error = %v, want ErrReplayedNonce", err)
	}
	if sb.Farm().N() != 3 || sb.Rejected() != 1 {
		t.Fatalf("farm=%d rejected=%d after reserved nonce, want 3 and 1",
			sb.Farm().N(), sb.Rejected())
	}
}

// TestStepFirstKMatchesStep asserts the zero-alloc step is round-for-
// round identical to the closure step, resizes included.
func TestStepFirstKMatchesStep(t *testing.T) {
	mk := func() *Switchboard { return newTestSwitchboard(t) }
	a, b := mk(), mk()
	rngA, rngB := xrand.New(99), xrand.New(99)
	env := xrand.New(123)
	for i := 0; i < 5000; i++ {
		k := 0
		if env.Bool(0.05) {
			k = env.Intn(4)
		}
		kk := k
		oa, ra := a.Step(uint64(i), func(j int) bool { return j < kk }, rngA)
		ob, rb := b.StepFirstK(uint64(i), k, rngB)
		if ra != rb || oa.N != ob.N || oa.Dissent != ob.Dissent ||
			oa.DTOF != ob.DTOF || oa.HasMajority != ob.HasMajority {
			t.Fatalf("step %d diverged: (%+v,%v) vs (%+v,%v)", i, oa, ra, ob, rb)
		}
	}
	if a.Resizes() != b.Resizes() || a.Controller().N() != b.Controller().N() {
		t.Fatalf("final state diverged: resizes %d/%d n %d/%d",
			a.Resizes(), b.Resizes(), a.Controller().N(), b.Controller().N())
	}
	if a.Resizes() == 0 {
		t.Fatal("scenario produced no resizes; weaken nothing, strengthen the storm")
	}
}

// TestStepFirstKConsensusZeroAlloc asserts the switchboard-level
// consensus path allocates nothing.
func TestStepFirstKConsensusZeroAlloc(t *testing.T) {
	sb := newTestSwitchboard(t)
	input := uint64(0)
	if allocs := testing.AllocsPerRun(10000, func() {
		input++
		sb.StepFirstK(input, 0, nil)
	}); allocs != 0 {
		t.Fatalf("consensus step allocates %.1f objects, want 0", allocs)
	}
}
