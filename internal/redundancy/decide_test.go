package redundancy

import (
	"testing"

	"aft/internal/voting"
	"aft/internal/xrand"
)

// TestDecideMatchesObserve drives a Controller and the pure
// Policy.Decide function through the same randomized outcome stream and
// checks they agree on every transition — Decide is the batch engine's
// per-lane controller step, so any drift between the two would break
// lane equivalence silently.
func TestDecideMatchesObserve(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		p := Policy{
			Min:          3 + 2*int(rng.Intn(3)),
			Max:          9 + 2*int(rng.Intn(3)),
			CriticalDTOF: int(rng.Intn(3)),
			Step:         2 + 2*int(rng.Intn(2)),
			LowerAfter:   1 + int(rng.Intn(20)),
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid policy %+v: %v", trial, p, err)
		}
		c, err := NewController(p, p.Min)
		if err != nil {
			t.Fatal(err)
		}
		n, quiet := p.Min, 0
		for step := 0; step < 500; step++ {
			dissent := int(rng.Intn(n + 1))
			o := voting.Outcome{N: n, Dissent: dissent}
			if o.HasMajority = dissent <= n/2; o.HasMajority {
				o.DTOF = voting.DTOF(n, dissent)
			}
			dir, resized := c.Observe(o)
			var wantDir Direction
			n, quiet, wantDir = p.Decide(n, quiet, o.DTOF, o.Dissent)
			if dir != wantDir || resized != (wantDir != 0) {
				t.Fatalf("trial %d step %d: Observe returned (%d,%v), Decide %d", trial, step, dir, resized, wantDir)
			}
			if c.N() != n {
				t.Fatalf("trial %d step %d: controller at n=%d, Decide at n=%d", trial, step, c.N(), n)
			}
		}
	}
}
