package redundancy

import (
	"errors"
	"testing"
	"testing/quick"

	"aft/internal/voting"
	"aft/internal/xrand"
)

func policyForTest() Policy {
	return Policy{Min: 3, Max: 9, CriticalDTOF: 1, Step: 2, LowerAfter: 10}
}

func TestPolicyValidation(t *testing.T) {
	bad := []Policy{
		{Min: 0, Max: 9, Step: 2, LowerAfter: 10},
		{Min: 4, Max: 9, Step: 2, LowerAfter: 10},
		{Min: 3, Max: 2, Step: 2, LowerAfter: 10},
		{Min: 3, Max: 8, Step: 2, LowerAfter: 10},
		{Min: 3, Max: 9, Step: 1, LowerAfter: 10},
		{Min: 3, Max: 9, Step: 0, LowerAfter: 10},
		{Min: 3, Max: 9, Step: 2, LowerAfter: 0},
		{Min: 3, Max: 9, CriticalDTOF: -1, Step: 2, LowerAfter: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, p)
		}
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy rejected: %v", err)
	}
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(policyForTest(), 4); err == nil {
		t.Fatal("even initial accepted")
	}
	if _, err := NewController(policyForTest(), 1); err == nil {
		t.Fatal("initial below Min accepted")
	}
	if _, err := NewController(policyForTest(), 11); err == nil {
		t.Fatal("initial above Max accepted")
	}
}

func outcome(n, dissent int) voting.Outcome {
	o := voting.Outcome{N: n, HasMajority: dissent <= n/2, Dissent: dissent}
	if o.HasMajority {
		o.DTOF = voting.DTOF(n, dissent)
		o.Correct = true
	}
	return o
}

func TestRaiseOnCriticalDTOF(t *testing.T) {
	c, err := NewController(policyForTest(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// n=3, one dissenter: dtof = 2-1 = 1 <= critical -> raise to 5.
	dir, changed := c.Observe(outcome(3, 1))
	if !changed || dir != Raise {
		t.Fatalf("Observe = %v, %v; want Raise", dir, changed)
	}
	if c.N() != 5 {
		t.Fatalf("N = %d, want 5", c.N())
	}
}

func TestRaiseSaturatesAtMax(t *testing.T) {
	c, err := NewController(policyForTest(), 9)
	if err != nil {
		t.Fatal(err)
	}
	dir, changed := c.Observe(outcome(9, 4)) // dtof 1: critical
	if changed || dir != 0 {
		t.Fatalf("raise beyond Max: %v, %v", dir, changed)
	}
	if c.N() != 9 {
		t.Fatalf("N = %d, want 9", c.N())
	}
}

func TestLowerAfterQuietStreak(t *testing.T) {
	c, err := NewController(policyForTest(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, changed := c.Observe(outcome(5, 0)); changed {
			t.Fatalf("lowered after only %d quiet runs", i+1)
		}
	}
	dir, changed := c.Observe(outcome(5, 0))
	if !changed || dir != Lower {
		t.Fatalf("10th quiet run: %v, %v; want Lower", dir, changed)
	}
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
	if c.QuietRuns() != 0 {
		t.Fatal("quiet streak not reset after lowering")
	}
}

func TestLowerSaturatesAtMin(t *testing.T) {
	c, err := NewController(policyForTest(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if dir, changed := c.Observe(outcome(3, 0)); changed {
			t.Fatalf("lowered below Min: %v", dir)
		}
	}
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
}

func TestModerateDissentResetsQuietStreak(t *testing.T) {
	p := policyForTest()
	p.CriticalDTOF = 0 // only a lost majority is critical
	c, err := NewController(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		c.Observe(outcome(7, 0))
	}
	// One dissenter: dtof 3 > 0, not critical, but not consensus either.
	if _, changed := c.Observe(outcome(7, 1)); changed {
		t.Fatal("moderate dissent caused a resize")
	}
	if c.QuietRuns() != 0 {
		t.Fatal("dissent did not reset the quiet streak")
	}
}

func TestStatsCounting(t *testing.T) {
	c, err := NewController(policyForTest(), 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(outcome(3, 1)) // raise
	for i := 0; i < 10; i++ {
		c.Observe(outcome(5, 0)) // 10th lowers
	}
	raises, lowers := c.Stats()
	if raises != 1 || lowers != 1 {
		t.Fatalf("stats = %d raises, %d lowers", raises, lowers)
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	key := []byte("test-key")
	req := SignResize(key, 5, Raise, 42)
	if err := VerifyResize(key, req); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	key := []byte("test-key")
	req := SignResize(key, 5, Raise, 42)
	tampered := req
	tampered.NewN = 9
	if err := VerifyResize(key, tampered); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered NewN: %v", err)
	}
	tampered = req
	tampered.Direction = Lower
	if err := VerifyResize(key, tampered); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered direction: %v", err)
	}
	tampered = req
	tampered.Nonce++
	if err := VerifyResize(key, tampered); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered nonce: %v", err)
	}
	if err := VerifyResize([]byte("wrong-key"), req); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("wrong key: %v", err)
	}
}

// Property: signing and verifying with the same key always round-trips;
// flipping any MAC byte always fails.
func TestMACProperty(t *testing.T) {
	f := func(keySeed, nonce uint64, n uint8, flip uint8) bool {
		key := make([]byte, 16)
		fillKey(key, keySeed)
		newN := int(n)%20 + 1
		req := SignResize(key, newN, Raise, nonce)
		if VerifyResize(key, req) != nil {
			return false
		}
		bad := req
		bad.MAC = append([]byte(nil), req.MAC...)
		bad.MAC[int(flip)%len(bad.MAC)] ^= 0x01
		return VerifyResize(key, bad) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fillKey(dst []byte, seed uint64) {
	for i := range dst {
		dst[i] = byte(seed >> (8 * (i % 8)))
	}
}

func TestDirectionString(t *testing.T) {
	if Raise.String() != "raise" || Lower.String() != "lower" {
		t.Fatal("direction names wrong")
	}
	if Direction(5).String() != "Direction(5)" {
		t.Fatal("unknown direction name wrong")
	}
}

func TestNewSwitchboardValidation(t *testing.T) {
	farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSwitchboard(nil, policyForTest(), []byte("k")); err == nil {
		t.Fatal("nil farm accepted")
	}
	if _, err := NewSwitchboard(farm, policyForTest(), nil); err == nil {
		t.Fatal("empty key accepted")
	}
	bad := policyForTest()
	bad.Step = 3
	if _, err := NewSwitchboard(farm, bad, []byte("k")); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestFig6Staircase reproduces the shape of the paper's Fig. 6: faults
// are injected, dtof drops, redundancy rises; when the disturbance ends
// and dtof stays high, redundancy decays back.
func TestFig6Staircase(t *testing.T) {
	farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSwitchboard(farm, policyForTest(), []byte("fig6"))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(99)

	// Phase 1: quiet. No resize.
	for i := 0; i < 9; i++ {
		if _, resized := sb.Step(1, nil, nil); resized {
			t.Fatal("resize during initial quiet phase")
		}
	}
	// Phase 2: disturbance hits one replica per round. With n=3 one
	// dissenter gives dtof 1: critical, raise.
	var rose bool
	for i := 0; i < 5; i++ {
		_, resized := sb.Step(1, func(j int) bool { return j == 0 }, rng)
		if resized {
			rose = true
		}
	}
	if !rose {
		t.Fatal("disturbance did not raise redundancy")
	}
	if farm.N() <= 3 {
		t.Fatalf("farm N = %d after disturbance, want > 3", farm.N())
	}
	nAfterStorm := farm.N()
	// Phase 3: quiet again long enough to trigger lowerings back to Min.
	for i := 0; i < 100; i++ {
		sb.Step(1, nil, nil)
	}
	if farm.N() != 3 {
		t.Fatalf("farm N = %d after calm, want 3 (was %d)", farm.N(), nAfterStorm)
	}
	if sb.Resizes() < 2 {
		t.Fatalf("resizes = %d, want >= 2 (up and down)", sb.Resizes())
	}
	// Throughout, with one corrupted replica max, no round may fail.
	_, failures := farm.Stats()
	if failures != 0 {
		t.Fatalf("failures = %d, want 0", failures)
	}
}

func TestSwitchboardControllerAndFarmAccessors(t *testing.T) {
	farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSwitchboard(farm, policyForTest(), []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if sb.Farm() != farm {
		t.Fatal("Farm() accessor wrong")
	}
	if sb.Controller().N() != 3 {
		t.Fatal("Controller() accessor wrong")
	}
}
