// Package redundancy implements the paper's "Reflective Switchboards"
// (§3.3): an autonomic controller that revises the dimensioning of a
// replication-and-voting scheme at run time, turning a fixed-redundancy
// Boulding "Thermostat" into a self-maintaining "Cell".
//
// The policy is the one the paper states:
//
//   - "When dtof is critically low, the Reflective Switchboards request
//     the replication system to increase the number of redundant
//     replicas."
//   - "When dtof is high for a certain amount of consecutive runs — 1000
//     runs in our experiments — a request to lower the number of
//     replicas is issued."
//
// Revisions travel as authenticated resize messages ("secure messages
// that ask to raise or lower the current number of replicas"),
// implemented with HMAC-SHA256.
package redundancy

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"aft/internal/voting"
	"aft/internal/xrand"
)

// Policy parameterizes the controller.
type Policy struct {
	// Min and Max bound the replica count; both must be odd.
	Min, Max int
	// CriticalDTOF triggers a raise when a round's dtof is at or below
	// it.
	CriticalDTOF int
	// Step is how many replicas a raise adds or a lowering removes;
	// must be even to preserve oddness.
	Step int
	// LowerAfter is the number of consecutive full-consensus rounds
	// before a lowering is issued (1000 in the paper's experiments).
	LowerAfter int
}

// DefaultPolicy mirrors the paper's experiment: redundancy 3–9,
// raise on dtof ≤ 1, lower after 1000 quiet runs.
func DefaultPolicy() Policy {
	return Policy{Min: 3, Max: 9, CriticalDTOF: 1, Step: 2, LowerAfter: 1000}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.Min <= 0 || p.Min%2 == 0 {
		return fmt.Errorf("redundancy: Min %d must be positive and odd", p.Min)
	}
	if p.Max < p.Min || p.Max%2 == 0 {
		return fmt.Errorf("redundancy: Max %d must be odd and >= Min %d", p.Max, p.Min)
	}
	if p.CriticalDTOF < 0 {
		return fmt.Errorf("redundancy: CriticalDTOF %d must be non-negative", p.CriticalDTOF)
	}
	if p.Step <= 0 || p.Step%2 != 0 {
		return fmt.Errorf("redundancy: Step %d must be positive and even", p.Step)
	}
	if p.LowerAfter <= 0 {
		return fmt.Errorf("redundancy: LowerAfter %d must be positive", p.LowerAfter)
	}
	return nil
}

// Direction of a resize request.
type Direction int

// Directions.
const (
	Raise Direction = iota + 1
	Lower
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case Raise:
		return "raise"
	case Lower:
		return "lower"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Controller implements the dtof policy. It is deliberately free of any
// knowledge of the voting organ: it deduces and publishes resize
// decisions, which the Switchboard transports as signed messages.
type Controller struct {
	policy Policy
	n      int
	quiet  int

	raises, lowers int64
}

// NewController builds a controller starting at initial replicas.
func NewController(policy Policy, initial int) (*Controller, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	if initial < policy.Min || initial > policy.Max || initial%2 == 0 {
		return nil, fmt.Errorf("redundancy: initial %d out of [%d,%d] or even",
			initial, policy.Min, policy.Max)
	}
	return &Controller{policy: policy, n: initial}, nil
}

// N reports the controller's current target replica count.
func (c *Controller) N() int { return c.n }

// QuietRuns reports the current streak of consecutive full-consensus
// rounds.
func (c *Controller) QuietRuns() int { return c.quiet }

// Stats reports the cumulative number of raise and lower decisions.
func (c *Controller) Stats() (raises, lowers int64) { return c.raises, c.lowers }

// adopt records an applied dimensioning. For self-issued revisions this
// is a no-op (Observe already moved the target and reset the quiet
// streak); for externally applied resize messages it keeps the
// controller's state in sync with the farm, so its next decision starts
// from the dimensioning actually in force.
func (c *Controller) adopt(n int) {
	if n == c.n {
		return
	}
	c.n = n
	c.quiet = 0
}

// Observe feeds one voting outcome. It returns the direction of a
// resize request when one is issued, or 0 when the dimensioning stands.
func (c *Controller) Observe(o voting.Outcome) (Direction, bool) {
	n, quiet, dir := c.policy.Decide(c.n, c.quiet, o.DTOF, o.Dissent)
	c.n, c.quiet = n, quiet
	switch dir {
	case Raise:
		c.raises++
	case Lower:
		c.lowers++
	}
	return dir, dir != 0
}

// Decide is the dtof policy as a pure function: given the current
// dimensioning n, the quiet streak, and a round's dtof and dissent, it
// returns the next dimensioning, the next streak, and the direction of
// the resize request issued (0 when the dimensioning stands). It is the
// single decision kernel shared by Controller.Observe and the batch
// campaign engine's lane loop, which carries n and quiet in flat
// per-lane slices and cannot afford a controller object per lane.
func (p Policy) Decide(n, quiet, dtof, dissent int) (newN, newQuiet int, dir Direction) {
	if dtof <= p.CriticalDTOF {
		// Critically close to failure: ask for more redundancy.
		if n < p.Max {
			n += p.Step
			if n > p.Max {
				n = p.Max
			}
			return n, 0, Raise
		}
		return n, 0, 0
	}
	if dissent == 0 {
		// Full consensus: the paper's "dtof is high".
		quiet++
		if quiet >= p.LowerAfter {
			quiet = 0
			if n > p.Min {
				n -= p.Step
				if n < p.Min {
					n = p.Min
				}
				return n, 0, Lower
			}
		}
		return n, quiet, 0
	}
	// Some dissent, but not critical: reset the quiet streak.
	return n, 0, 0
}

// --- Secure resize messages -------------------------------------------

// ResizeRequest is the authenticated message carrying a dimensioning
// revision.
type ResizeRequest struct {
	// NewN is the requested replica count.
	NewN int
	// Direction documents why the revision was issued.
	Direction Direction
	// Nonce makes each message unique.
	Nonce uint64
	// MAC is the HMAC-SHA256 tag over (NewN, Direction, Nonce).
	MAC []byte
}

// ErrBadMAC reports a resize request failing authentication.
var ErrBadMAC = errors.New("redundancy: resize request failed authentication")

// ErrReplayedNonce reports a resize request whose nonce does not advance
// past the last accepted one: a replayed or stale message. Without this
// check any previously signed request re-verifies forever, so an
// attacker who captured one legitimate "lower" message could replay it
// to pin the organ at minimal redundancy.
var ErrReplayedNonce = errors.New("redundancy: replayed or stale resize nonce")

func macPayload(newN int, dir Direction, nonce uint64) []byte {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(int64(newN)))
	binary.BigEndian.PutUint64(buf[8:16], uint64(int64(dir)))
	binary.BigEndian.PutUint64(buf[16:24], nonce)
	return buf[:]
}

// SignResize builds an authenticated resize request.
func SignResize(key []byte, newN int, dir Direction, nonce uint64) ResizeRequest {
	mac := hmac.New(sha256.New, key)
	mac.Write(macPayload(newN, dir, nonce))
	return ResizeRequest{NewN: newN, Direction: dir, Nonce: nonce, MAC: mac.Sum(nil)}
}

// VerifyResize authenticates a resize request.
func VerifyResize(key []byte, r ResizeRequest) error {
	mac := hmac.New(sha256.New, key)
	mac.Write(macPayload(r.NewN, r.Direction, r.Nonce))
	if !hmac.Equal(mac.Sum(nil), r.MAC) {
		return ErrBadMAC
	}
	return nil
}

// --- Switchboard --------------------------------------------------------

// Switchboard couples a voting farm with a controller, carrying resize
// decisions as authenticated messages — the complete §3.3 loop.
type Switchboard struct {
	farm *voting.Farm
	ctrl *Controller
	key  []byte

	// lastNonce is the highest nonce accepted on receipt; requests whose
	// nonce does not strictly advance past it are rejected as replays.
	// Self-issued revisions sign with lastNonce+1, so one nonce space
	// covers both self-delivered and externally applied messages.
	lastNonce uint64
	resizes   int64
	rejected  int64
}

// NewSwitchboard wires a farm to a fresh controller with the given
// policy. The farm's current size becomes the controller's initial
// value. key authenticates resize messages.
func NewSwitchboard(farm *voting.Farm, policy Policy, key []byte) (*Switchboard, error) {
	if farm == nil {
		return nil, fmt.Errorf("redundancy: nil farm")
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("redundancy: empty key")
	}
	ctrl, err := NewController(policy, farm.N())
	if err != nil {
		return nil, err
	}
	k := make([]byte, len(key))
	copy(k, key)
	return &Switchboard{farm: farm, ctrl: ctrl, key: k}, nil
}

// Controller exposes the wrapped controller (read-only use).
func (s *Switchboard) Controller() *Controller { return s.ctrl }

// Farm exposes the wrapped farm.
func (s *Switchboard) Farm() *voting.Farm { return s.farm }

// Resizes reports how many resize messages were applied.
func (s *Switchboard) Resizes() int64 { return s.resizes }

// Rejected reports how many resize messages were rejected (failed
// authentication, replayed/stale nonce, or invalid replica count).
func (s *Switchboard) Rejected() int64 { return s.rejected }

// LastNonce reports the highest nonce accepted so far.
func (s *Switchboard) LastNonce() uint64 { return s.lastNonce }

// Apply delivers one resize request to the switchboard: it verifies the
// MAC, rejects non-increasing nonces with ErrReplayedNonce, rejects
// dimensionings outside the policy band, resizes the farm, and keeps the
// controller's notion of the dimensioning in sync. Every rejection,
// whatever the cause, is counted.
func (s *Switchboard) Apply(req ResizeRequest) error {
	if err := VerifyResize(s.key, req); err != nil {
		s.rejected++
		return err
	}
	if req.Nonce <= s.lastNonce {
		s.rejected++
		return fmt.Errorf("%w: nonce %d, last accepted %d",
			ErrReplayedNonce, req.Nonce, s.lastNonce)
	}
	if req.Nonce == ^uint64(0) {
		// The maximum nonce is reserved: accepting it would leave no
		// successor for self-issued revisions (lastNonce+1 would wrap to
		// 0) and wedge the switchboard permanently.
		s.rejected++
		return fmt.Errorf("%w: nonce %d is reserved", ErrReplayedNonce, req.Nonce)
	}
	if p := s.ctrl.policy; req.NewN < p.Min || req.NewN > p.Max {
		s.rejected++
		return fmt.Errorf("redundancy: resize to %d outside policy band [%d,%d]",
			req.NewN, p.Min, p.Max)
	}
	if err := s.farm.SetReplicas(req.NewN); err != nil {
		s.rejected++
		return err
	}
	s.ctrl.adopt(req.NewN)
	s.lastNonce = req.Nonce
	s.resizes++
	return nil
}

// deliver signs and applies the controller's current target — the
// revision travels as a signed message, verified on receipt with replay
// protection: the paper's "secure messages".
func (s *Switchboard) deliver(dir Direction) bool {
	req := SignResize(s.key, s.ctrl.N(), dir, s.lastNonce+1)
	return s.Apply(req) == nil
}

// Step runs one voting round and applies any dimensioning revision the
// controller deduces from it. It returns the round outcome and whether a
// resize occurred.
func (s *Switchboard) Step(input uint64, corrupted func(i int) bool, rng *xrand.Rand) (voting.Outcome, bool) {
	o := s.farm.Round(input, corrupted, rng)
	dir, changed := s.ctrl.Observe(o)
	if !changed {
		return o, false
	}
	return o, s.deliver(dir)
}

// StepFirstK is the allocation-free variant of Step for the §3.3 storm
// model, where a disturbance corrupts the first k replicas: it avoids
// both the per-round corruption closure and the per-round ballot slice
// (see voting.Farm.RoundFirstK). On consensus rounds — the overwhelming
// majority of a Fig. 7 campaign — it performs zero heap allocations.
func (s *Switchboard) StepFirstK(input uint64, k int, rng *xrand.Rand) (voting.Outcome, bool) {
	o := s.farm.RoundFirstK(input, k, rng)
	dir, changed := s.ctrl.Observe(o)
	if !changed {
		return o, false
	}
	return o, s.deliver(dir)
}

// StepFaulty runs one round under an explicit fault environment, the
// chaos harness's superset of StepFirstK: k replicas are corrupted;
// when collude is set they form a Byzantine group voting one shared
// wrong value (voting.Farm.RoundColluding); when partitioned is set the
// organ↔controller link is down this round — the vote still runs, but
// the outcome observation is lost, so the controller neither updates
// its streaks nor issues a resize. With both flags false it is
// operation-for-operation StepFirstK.
func (s *Switchboard) StepFaulty(input uint64, k int, collude, partitioned bool, rng *xrand.Rand) (voting.Outcome, bool) {
	var o voting.Outcome
	if collude {
		o = s.farm.RoundColluding(input, k, rng)
	} else {
		o = s.farm.RoundFirstK(input, k, rng)
	}
	if partitioned {
		return o, false
	}
	dir, changed := s.ctrl.Observe(o)
	if !changed {
		return o, false
	}
	return o, s.deliver(dir)
}

// StepFaultyRef is the reference-loop idiom of StepFaulty: per-round
// corruption closures and heap ballots (voting.Farm.Round/RoundShared),
// kept as an independent implementation so the differential replay can
// assert engine parity on colluding and partitioned rounds too. The
// ballot values and rng consumption match StepFaulty(input, k, ...)
// exactly.
func (s *Switchboard) StepFaultyRef(input uint64, k int, collude, partitioned bool, rng *xrand.Rand) (voting.Outcome, bool) {
	var corrupted func(i int) bool
	if k > 0 {
		kk := k
		corrupted = func(i int) bool { return i < kk }
	}
	var o voting.Outcome
	if collude {
		o = s.farm.RoundShared(input, corrupted, rng)
	} else {
		o = s.farm.Round(input, corrupted, rng)
	}
	if partitioned {
		return o, false
	}
	dir, changed := s.ctrl.Observe(o)
	if !changed {
		return o, false
	}
	return o, s.deliver(dir)
}
