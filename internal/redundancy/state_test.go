package redundancy

import (
	"testing"

	"aft/internal/voting"
	"aft/internal/xrand"
)

// drive steps the switchboard through a deterministic mixed workload:
// quiet stretches (building the lowering streak) punctuated by
// corruption spikes (forcing raises).
func drive(sb *Switchboard, rounds int, seed uint64) {
	rng := xrand.New(seed)
	for i := 0; i < rounds; i++ {
		k := 0
		if i%97 == 0 {
			k = 2
		}
		sb.StepFirstK(uint64(i), k, rng)
	}
}

// TestSwitchboardStateRoundTrip captures the state mid-campaign,
// restores it into a fresh organ, and drives both forward in lockstep:
// every observable — outcomes, resize decisions, nonces — must match.
func TestSwitchboardStateRoundTrip(t *testing.T) {
	orig := newTestSwitchboard(t)
	rng := xrand.New(1906)
	drive(orig, 2500, 7)

	clone := newTestSwitchboard(t)
	if err := clone.RestoreState(orig.ExportState()); err != nil {
		t.Fatal(err)
	}
	cloneRng := xrand.New(1906)
	for i := 0; i < 1000; i++ {
		rng.Uint64()
		cloneRng.Uint64()
	}

	for i := 0; i < 3000; i++ {
		k := 0
		if i%53 == 0 {
			k = 3
		}
		ao, ar := orig.StepFirstK(uint64(i), k, rng)
		bo, br := clone.StepFirstK(uint64(i), k, cloneRng)
		if ao.N != bo.N || ao.DTOF != bo.DTOF || ao.Dissent != bo.Dissent || ar != br {
			t.Fatalf("round %d diverged: %+v/%v vs %+v/%v", i, ao, ar, bo, br)
		}
	}
	if orig.LastNonce() != clone.LastNonce() || orig.Resizes() != clone.Resizes() {
		t.Fatalf("counters diverged: nonce %d/%d resizes %d/%d",
			orig.LastNonce(), clone.LastNonce(), orig.Resizes(), clone.Resizes())
	}
	ar, al := orig.Controller().Stats()
	br, bl := clone.Controller().Stats()
	if ar != br || al != bl {
		t.Fatalf("controller stats diverged: %d/%d vs %d/%d", ar, al, br, bl)
	}
}

// TestRestoreStateRejectsCorruptStates exercises the validation paths a
// corrupt snapshot would hit.
func TestRestoreStateRejectsCorruptStates(t *testing.T) {
	base := newTestSwitchboard(t)
	drive(base, 500, 1)
	good := base.ExportState()

	cases := []struct {
		name string
		mod  func(*SwitchboardState)
	}{
		{"controller N below band", func(s *SwitchboardState) { s.Controller.N = 1; s.Farm.Replicas = 1 }},
		{"controller N above band", func(s *SwitchboardState) { s.Controller.N = 11; s.Farm.Replicas = 11 }},
		{"controller N even", func(s *SwitchboardState) { s.Controller.N = 4; s.Farm.Replicas = 4 }},
		{"negative quiet streak", func(s *SwitchboardState) { s.Controller.Quiet = -1 }},
		{"quiet streak past LowerAfter", func(s *SwitchboardState) { s.Controller.Quiet = 1000 }},
		{"negative raises", func(s *SwitchboardState) { s.Controller.Raises = -1 }},
		{"farm/controller disagreement", func(s *SwitchboardState) { s.Farm.Replicas = 5 }},
		{"negative farm rounds", func(s *SwitchboardState) { s.Farm.Rounds = -1 }},
		{"failures exceed rounds", func(s *SwitchboardState) { s.Farm.Failures = s.Farm.Rounds + 1 }},
		{"negative resizes", func(s *SwitchboardState) { s.Resizes = -1 }},
	}
	for _, tc := range cases {
		st := good
		tc.mod(&st)
		sb := newTestSwitchboard(t)
		if err := sb.RestoreState(st); err == nil {
			t.Errorf("%s: RestoreState accepted %+v", tc.name, st)
		}
	}

	// The untouched export must restore cleanly.
	if err := newTestSwitchboard(t).RestoreState(good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}

// TestFarmStateRoundTrip covers the farm-level export in isolation.
func TestFarmStateRoundTrip(t *testing.T) {
	farm, err := voting.NewFarm(5, func(v uint64) uint64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	for i := 0; i < 100; i++ {
		farm.RoundFirstK(uint64(i), i%7, rng)
	}
	st := farm.ExportState()

	clone, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if clone.N() != farm.N() {
		t.Fatalf("replicas %d vs %d", clone.N(), farm.N())
	}
	ar, af := farm.Stats()
	br, bf := clone.Stats()
	if ar != br || af != bf {
		t.Fatalf("stats %d/%d vs %d/%d", ar, af, br, bf)
	}
	if err := clone.RestoreState(voting.FarmState{Replicas: 4}); err == nil {
		t.Fatal("even replica count accepted")
	}
}
