// Controller and switchboard state export/import for campaign
// checkpointing (see internal/checkpoint). The controller's quiet
// streak and the switchboard's accepted nonce are the two pieces of
// §3.3 state whose loss would silently change a resumed campaign: a
// reset streak delays the next lowering by up to LowerAfter rounds, and
// a reset nonce would re-accept replayed resize messages.

package redundancy

import (
	"fmt"

	"aft/internal/voting"
)

// ControllerState is the serializable state of a Controller.
type ControllerState struct {
	// N is the controller's current target replica count.
	N int
	// Quiet is the current consecutive-full-consensus streak.
	Quiet int
	// Raises and Lowers are the cumulative decision counters.
	Raises, Lowers int64
}

// ExportState captures the controller's state for a checkpoint.
func (c *Controller) ExportState() ControllerState {
	return ControllerState{N: c.n, Quiet: c.quiet, Raises: c.raises, Lowers: c.lowers}
}

// RestoreState rewinds the controller to a previously exported state,
// validating it against the controller's policy so corrupt snapshots
// cannot park the organ outside the band.
func (c *Controller) RestoreState(st ControllerState) error {
	if st.N < c.policy.Min || st.N > c.policy.Max || st.N%2 == 0 {
		return fmt.Errorf("redundancy: restored N %d outside policy band [%d,%d] or even",
			st.N, c.policy.Min, c.policy.Max)
	}
	if st.Quiet < 0 || st.Quiet >= c.policy.LowerAfter {
		return fmt.Errorf("redundancy: restored quiet streak %d outside [0,%d)",
			st.Quiet, c.policy.LowerAfter)
	}
	if st.Raises < 0 || st.Lowers < 0 {
		return fmt.Errorf("redundancy: negative restored decision counters")
	}
	c.n = st.N
	c.quiet = st.Quiet
	c.raises = st.Raises
	c.lowers = st.Lowers
	return nil
}

// SwitchboardState is the serializable state of a Switchboard and the
// farm and controller it couples. The signing key is not part of the
// state: it is supplied by the campaign that reconstructs the
// switchboard, so a snapshot file never contains key material.
type SwitchboardState struct {
	// Controller is the dtof policy controller's state.
	Controller ControllerState
	// Farm is the voting organ's state.
	Farm voting.FarmState
	// LastNonce is the highest resize nonce accepted so far — the
	// replay-protection watermark.
	LastNonce uint64
	// Resizes and Rejected are the cumulative message counters.
	Resizes, Rejected int64
}

// ExportState captures the switchboard, its controller, and its farm.
func (s *Switchboard) ExportState() SwitchboardState {
	return SwitchboardState{
		Controller: s.ctrl.ExportState(),
		Farm:       s.farm.ExportState(),
		LastNonce:  s.lastNonce,
		Resizes:    s.resizes,
		Rejected:   s.rejected,
	}
}

// Validate checks an exported switchboard state against a policy
// without needing a live Switchboard: the same integrity rules
// RestoreState enforces (dimensioning inside the band and odd, quiet
// streak inside [0, LowerAfter), farm and controller in agreement, sane
// counters). The batch campaign engine, which carries switchboard state
// in flat per-lane slices rather than Switchboard objects, runs lane
// snapshots through this before adopting them.
func (st SwitchboardState) Validate(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if st.Resizes < 0 || st.Rejected < 0 {
		return fmt.Errorf("redundancy: negative restored message counters")
	}
	if st.Farm.Replicas != st.Controller.N {
		return fmt.Errorf("redundancy: restored farm size %d disagrees with controller target %d",
			st.Farm.Replicas, st.Controller.N)
	}
	if st.Controller.N < p.Min || st.Controller.N > p.Max || st.Controller.N%2 == 0 {
		return fmt.Errorf("redundancy: restored N %d outside policy band [%d,%d] or even",
			st.Controller.N, p.Min, p.Max)
	}
	if st.Controller.Quiet < 0 || st.Controller.Quiet >= p.LowerAfter {
		return fmt.Errorf("redundancy: restored quiet streak %d outside [0,%d)",
			st.Controller.Quiet, p.LowerAfter)
	}
	if st.Controller.Raises < 0 || st.Controller.Lowers < 0 {
		return fmt.Errorf("redundancy: negative restored decision counters")
	}
	if st.Farm.Rounds < 0 || st.Farm.Failures < 0 || st.Farm.Failures > st.Farm.Rounds {
		return fmt.Errorf("voting: invalid farm counters: %d failures over %d rounds",
			st.Farm.Failures, st.Farm.Rounds)
	}
	return nil
}

// RestoreState rewinds the switchboard, controller, and farm to a
// previously exported state. The farm's dimensioning and the
// controller's target must agree — a snapshot in which they differ is
// corrupt, because Apply and Observe keep them in lock step.
func (s *Switchboard) RestoreState(st SwitchboardState) error {
	if err := st.Validate(s.ctrl.policy); err != nil {
		return err
	}
	if err := s.ctrl.RestoreState(st.Controller); err != nil {
		return err
	}
	if err := s.farm.RestoreState(st.Farm); err != nil {
		return err
	}
	s.lastNonce = st.LastNonce
	s.resizes = st.Resizes
	s.rejected = st.Rejected
	return nil
}
