package checkpoint

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// sample builds a representative snapshot with several section shapes.
func sample() *Snapshot {
	s := New("aft/test", 3)
	s.Add("alpha", []byte("payload-one"))
	s.Add("empty", nil)
	var w Writer
	w.U64(12345)
	w.I64(-9)
	w.F64(0.25)
	w.Bool(true)
	w.String("hello")
	w.I64s([]int64{1, -2, 3})
	w.U64s([]uint64{7, 8})
	s.Add("binary", w.Data())
	return s
}

// TestRoundTrip asserts Encode/Decode preserves kind, version, section
// order, and payloads.
func TestRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "aft/test" || got.Version != 3 {
		t.Fatalf("kind/version = %q/%d", got.Kind, got.Version)
	}
	wantNames := []string{"alpha", "empty", "binary"}
	names := got.Names()
	if len(names) != len(wantNames) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range wantNames {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, wantNames)
		}
	}
	if string(got.Section("alpha")) != "payload-one" {
		t.Fatalf("alpha = %q", got.Section("alpha"))
	}
	if !got.Has("empty") || len(got.Section("empty")) != 0 {
		t.Fatal("empty section lost")
	}
	if got.Has("missing") || got.Section("missing") != nil {
		t.Fatal("phantom section")
	}

	r := NewReader(got.Section("binary"))
	if v := r.U64(); v != 12345 {
		t.Fatalf("U64 = %d", v)
	}
	if v := r.I64(); v != -9 {
		t.Fatalf("I64 = %d", v)
	}
	if v := r.F64(); v != 0.25 {
		t.Fatalf("F64 = %v", v)
	}
	if !r.Bool() {
		t.Fatal("Bool = false")
	}
	if v := r.String(); v != "hello" {
		t.Fatalf("String = %q", v)
	}
	is := r.I64s()
	if len(is) != 3 || is[0] != 1 || is[1] != -2 || is[2] != 3 {
		t.Fatalf("I64s = %v", is)
	}
	us := r.U64s()
	if len(us) != 2 || us[0] != 7 || us[1] != 8 {
		t.Fatalf("U64s = %v", us)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAddReplacesInPlace asserts Add with a duplicate name overwrites
// without reordering, keeping the encoding deterministic.
func TestAddReplacesInPlace(t *testing.T) {
	s := New("k", 1)
	s.Add("a", []byte("1"))
	s.Add("b", []byte("2"))
	s.Add("a", []byte("3"))
	if n := s.Names(); len(n) != 2 || n[0] != "a" || n[1] != "b" {
		t.Fatalf("names = %v", n)
	}
	if string(s.Section("a")) != "3" {
		t.Fatalf("a = %q", s.Section("a"))
	}
}

// TestDecodeRejectsForeignData asserts non-snapshot inputs fail with
// ErrNotSnapshot.
func TestDecodeRejectsForeignData(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("x"), []byte("{\"json\":true}"), bytes.Repeat([]byte{0xff}, 64)} {
		if _, err := Decode(data); !errors.Is(err, ErrNotSnapshot) {
			t.Fatalf("Decode(%q) = %v, want ErrNotSnapshot", data, err)
		}
	}
}

// TestDecodeRejectsEveryTruncation truncates the encoding at every
// length and demands an error each time — no prefix of a snapshot may
// decode as a snapshot.
func TestDecodeRejectsEveryTruncation(t *testing.T) {
	enc := sample().Encode()
	for n := 0; n < len(enc); n++ {
		if _, err := Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(enc))
		}
	}
}

// TestDecodeRejectsEveryByteFlip flips each byte of the encoding in
// turn; the checksum must catch every single-byte corruption.
func TestDecodeRejectsEveryByteFlip(t *testing.T) {
	enc := sample().Encode()
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5a
		if _, err := Decode(mut); err == nil {
			t.Fatalf("byte flip at offset %d decoded successfully", i)
		}
	}
}

// TestDecodeRejectsFutureFormatVersion rewrites the container version
// (re-checksummed, so only the version differs) and expects
// ErrFormatVersion.
func TestDecodeRejectsFutureFormatVersion(t *testing.T) {
	s := sample()
	enc := s.Encode()
	// Rebuild by hand with a bumped format version.
	var w Writer
	w.Raw(enc[:8])
	w.U16(FormatVersion + 1)
	w.Raw(enc[8+2 : len(enc)-4])
	body := w.Data()
	var tail Writer
	tail.U32(crc32.ChecksumIEEE(body))
	data := append(body, tail.Data()...)
	if _, err := Decode(data); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("Decode = %v, want ErrFormatVersion", err)
	}
}

// TestFileRoundTripAtomic asserts WriteFile/ReadFile round-trips and
// leaves no temp files behind.
func TestFileRoundTripAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	s := sample()
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), s.Encode()) {
		t.Fatal("file round-trip altered the snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the snapshot", len(entries))
	}
	// Reading a corrupt file reports the path.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("ReadFile accepted garbage")
	}
}

// TestReaderSticky asserts a short read poisons the reader: later calls
// return zero values and Close reports the first error.
func TestReaderSticky(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U64() // short
	if r.Err() == nil {
		t.Fatal("short U64 did not error")
	}
	if v := r.U32(); v != 0 {
		t.Fatalf("post-error U32 = %d", v)
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close = nil after error")
	}
	// Unconsumed trailing bytes are an error too.
	r2 := NewReader([]byte{1, 2, 3})
	_ = r2.Byte()
	if err := r2.Close(); err == nil {
		t.Fatal("Close ignored trailing bytes")
	}
	// Hostile slice length: declared far past the buffer.
	var w Writer
	w.U32(1 << 30)
	r3 := NewReader(w.Data())
	if vs := r3.I64s(); vs != nil || r3.Err() == nil {
		t.Fatal("hostile I64s length accepted")
	}
}
