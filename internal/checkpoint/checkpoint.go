// Package checkpoint implements the versioned, self-describing binary
// snapshot container behind the repository's crash-resume machinery.
//
// A long campaign — the paper's Fig. 7 experiment runs 65 million voting
// rounds — used to be an all-or-nothing in-memory pass: one crash or
// preemption and the whole campaign restarted. A Snapshot turns the
// campaign into a resumable computation: the engine serializes its state
// (buffers, counters, switchboard, PRNG streams) into named sections,
// and a resumed run continues byte-identically to an uninterrupted one.
//
// The container is deliberately dumb: it knows nothing about campaigns.
// It provides
//
//   - an 8-byte magic plus a container format version, so foreign files
//     are rejected before any section is parsed;
//   - a kind string plus a kind version, so each producer (the campaign
//     engine, the scenario runner) can evolve its payload schema
//     independently and reject snapshots it cannot interpret;
//   - named, length-prefixed sections in a deterministic order;
//   - a CRC-32 trailer over the entire container, so truncated or
//     corrupted files fail Decode instead of resuming a wrong campaign.
//
// Producers serialize fixed-width payloads with Writer and parse them
// with Reader (a sticky-error decoder), or store JSON in a section when
// the payload is cold. Compatibility rules are documented in DESIGN.md:
// the container version only changes when this file's layout changes;
// kind versions change whenever a producer's section schema changes, and
// there is no cross-version migration — a snapshot is a cache of a
// deterministic computation, so the producer re-runs from round zero
// rather than guessing at an old schema.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// FormatVersion is the container layout version written by Encode and
// required by Decode.
const FormatVersion = 1

// magic identifies checkpoint files; the trailing NUL keeps it 8 bytes.
var magic = [8]byte{'A', 'F', 'T', 'C', 'K', 'P', 'T', 0}

// Errors returned by Decode. They are wrapped with detail; test with
// errors.Is.
var (
	// ErrNotSnapshot reports data that does not begin with the
	// checkpoint magic — not a snapshot file at all.
	ErrNotSnapshot = errors.New("checkpoint: not a snapshot (bad magic)")
	// ErrFormatVersion reports a container format version this build
	// cannot parse.
	ErrFormatVersion = errors.New("checkpoint: unsupported container format version")
	// ErrCorrupt reports a snapshot that is truncated, has an invalid
	// structure, or fails its checksum.
	ErrCorrupt = errors.New("checkpoint: corrupt or truncated snapshot")
)

// maxSectionSize bounds a single section's declared length, so a corrupt
// length prefix cannot drive a multi-gigabyte allocation before the
// checksum is ever verified.
const maxSectionSize = 1 << 30

// section is one named payload.
type section struct {
	name    string
	payload []byte
}

// Snapshot is a decoded or under-construction snapshot: a kind, a kind
// version, and an ordered list of named sections.
type Snapshot struct {
	// Kind names the producer's schema, e.g. "aft/campaign".
	Kind string
	// Version is the producer's schema version for Kind.
	Version uint16

	sections []section
}

// New returns an empty snapshot of the given kind and kind version.
func New(kind string, version uint16) *Snapshot {
	return &Snapshot{Kind: kind, Version: version}
}

// Add appends a section, replacing any existing section with the same
// name in place (so section order stays deterministic).
func (s *Snapshot) Add(name string, payload []byte) {
	for i := range s.sections {
		if s.sections[i].name == name {
			s.sections[i].payload = payload
			return
		}
	}
	s.sections = append(s.sections, section{name: name, payload: payload})
}

// Section returns the named section's payload, or nil when absent. An
// empty section is distinguished from a missing one by Has.
func (s *Snapshot) Section(name string) []byte {
	for _, sec := range s.sections {
		if sec.name == name {
			return sec.payload
		}
	}
	return nil
}

// Has reports whether the named section exists.
func (s *Snapshot) Has(name string) bool {
	for _, sec := range s.sections {
		if sec.name == name {
			return true
		}
	}
	return false
}

// Names lists the section names in container order.
func (s *Snapshot) Names() []string {
	out := make([]string, len(s.sections))
	for i, sec := range s.sections {
		out[i] = sec.name
	}
	return out
}

// Encode serializes the snapshot: magic, format version, kind, kind
// version, sections, CRC-32 trailer.
func (s *Snapshot) Encode() []byte {
	var w Writer
	w.Raw(magic[:])
	w.U16(FormatVersion)
	w.String(s.Kind)
	w.U16(s.Version)
	w.U32(uint32(len(s.sections)))
	for _, sec := range s.sections {
		w.String(sec.name)
		w.Bytes(sec.payload)
	}
	body := w.Data()
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(body))
	return append(body, tail[:]...)
}

// Decode parses and verifies an encoded snapshot. It rejects foreign
// data (ErrNotSnapshot), unsupported container versions
// (ErrFormatVersion), and truncation or corruption anywhere in the file
// (ErrCorrupt) — the checksum covers every byte, so a resumed campaign
// can never silently start from damaged state.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrNotSnapshot, len(data))
	}
	if string(data[:len(magic)]) != string(magic[:]) {
		return nil, ErrNotSnapshot
	}
	if len(data) < len(magic)+2+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := NewReader(body[len(magic):])
	if v := r.U16(); v != FormatVersion {
		// The checksum already verified, so the version field is
		// trustworthy: this really is a snapshot from another build.
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrFormatVersion, v, FormatVersion)
	}
	snap := &Snapshot{Kind: r.String(), Version: r.U16()}
	n := r.U32()
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d sections", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		name := r.String()
		payload := r.BytesCopy()
		if r.Err() != nil {
			break
		}
		snap.sections = append(snap.sections, section{name: name, payload: payload})
	}
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return snap, nil
}

// WriteFile atomically writes the encoded snapshot; see
// WriteFileAtomic for the durability discipline.
func (s *Snapshot) WriteFile(path string) error {
	return WriteFileAtomic(path, s.Encode())
}

// WriteFileAtomic durably replaces path with data: parent directories
// are created as needed, the bytes land in a same-directory temporary
// file, are fsynced, and are renamed into place, so a crash mid-write
// can never leave a half-written file where a reader will look for a
// whole one. It is the one crash-safe write primitive shared by the
// snapshot container, the sweep-cell memo cache, and the job store.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error is the one to report
		return err
	}
	// Flush to stable storage before the rename: without it a system
	// crash can make the rename durable before the data blocks, leaving
	// the path pointing at a truncated file — destroying the previous
	// good copy, the one loss this layer must prevent.
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error is the one to report
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	//aftvet:allow atomicwrite -- this IS the atomic-write primitive: the one sanctioned rename every persistence package routes through
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and decodes a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}
