// Fixed-width binary encoding helpers shared by every snapshot
// producer. Writer appends little-endian fields to a buffer; Reader is
// its sticky-error inverse: after the first short read every further
// field decodes to the zero value, and the single accumulated error is
// checked once, at Close. Producers therefore serialize whole structs
// without per-field error plumbing while truncation is still always
// detected.

package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends little-endian fields to a growing buffer.
type Writer struct {
	buf []byte
}

// Data returns the accumulated bytes.
func (w *Writer) Data() []byte { return w.buf }

// Raw appends b verbatim, with no length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Byte appends one byte.
func (w *Writer) Byte(v byte) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// U16 appends a uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 by its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes appends a uint32 length prefix followed by b.
func (w *Writer) Bytes(b []byte) {
	w.U32(uint32(len(b)))
	w.Raw(b)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// I64s appends a length-prefixed slice of int64.
func (w *Writer) I64s(vs []int64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.I64(v)
	}
}

// U64s appends a length-prefixed slice of uint64.
func (w *Writer) U64s(vs []uint64) {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.U64(v)
	}
}

// Reader decodes a Writer-produced buffer. It is sticky: the first
// failure poisons the reader, later calls return zero values, and Close
// reports the accumulated error (or leftover bytes).
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Close verifies the buffer was consumed exactly: it returns the sticky
// error if any, or an error if trailing bytes remain.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("checkpoint: %d trailing bytes", len(r.data)-r.off)
	}
	return nil
}

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// take returns the next n bytes, or nil after poisoning the reader.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data)-r.off < n {
		r.fail("short read: need %d bytes at offset %d of %d", n, r.off, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 1:
		return true
	case 0:
		return false
	default:
		r.fail("invalid bool byte")
		return false
	}
}

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// BytesCopy reads a length-prefixed byte slice into fresh storage.
func (r *Reader) BytesCopy() []byte {
	n := r.U32()
	if n > maxSectionSize {
		r.fail("declared length %d exceeds limit", n)
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.BytesCopy()) }

// I64s reads a length-prefixed slice of int64.
func (r *Reader) I64s() []int64 {
	n := r.U32()
	if r.err != nil || n == 0 {
		return nil
	}
	if int(n) > len(r.data)/8+1 {
		r.fail("declared slice length %d exceeds buffer", n)
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.I64()
	}
	if r.err != nil {
		return nil
	}
	return out
}

// U64s reads a length-prefixed slice of uint64.
func (r *Reader) U64s() []uint64 {
	n := r.U32()
	if r.err != nil || n == 0 {
		return nil
	}
	if int(n) > len(r.data)/8+1 {
		r.fail("declared slice length %d exceeds buffer", n)
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.U64()
	}
	if r.err != nil {
		return nil
	}
	return out
}
