// Package ecc implements the error-correcting codes used by the
// fault-tolerant memory access methods of §3.1.
//
// The workhorse is a Hamming(72,64) SEC-DED code: 64 data bits protected
// by 7 Hamming check bits plus one overall parity bit, the same geometry
// used by real ECC DIMMs. It corrects any single-bit error and detects
// any double-bit error per 72-bit codeword. The package also provides
// bitwise triple-modular-redundancy voting for word triplets, used by
// the SEL-tolerant methods.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// Status classifies the outcome of decoding a codeword.
type Status int

// Decode outcomes.
const (
	// OK means the codeword was error-free.
	OK Status = iota + 1
	// Corrected means a single-bit error was found and repaired.
	Corrected
	// DoubleError means two bit errors were detected; the data is
	// unrecoverable by this code.
	DoubleError
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case DoubleError:
		return "double-error"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrDoubleError is returned by Decode when a double-bit error is
// detected.
var ErrDoubleError = errors.New("ecc: uncorrectable double-bit error")

// Codeword is a 72-bit Hamming SEC-DED codeword. Bit i of the logical
// codeword is bit (i%64) of Lo for i < 64, otherwise bit (i-64) of Hi.
// Position 0 holds the overall parity bit; positions 1,2,4,...,64 hold
// the seven Hamming check bits; all remaining positions hold data bits.
type Codeword struct {
	Lo uint64
	Hi uint8
}

// Bit returns bit pos of the codeword (0 <= pos < 72).
func (c Codeword) Bit(pos int) uint {
	if pos < 64 {
		return uint(c.Lo>>uint(pos)) & 1
	}
	return uint(c.Hi>>uint(pos-64)) & 1
}

// Flip returns the codeword with bit pos inverted. It is the injection
// primitive tests use to model SEUs on the stored codeword.
func (c Codeword) Flip(pos int) Codeword {
	if pos < 64 {
		c.Lo ^= 1 << uint(pos)
	} else {
		c.Hi ^= 1 << uint(pos-64)
	}
	return c
}

func (c Codeword) set(pos int, b uint) Codeword {
	if b&1 == 0 {
		return c.clear(pos)
	}
	if pos < 64 {
		c.Lo |= 1 << uint(pos)
	} else {
		c.Hi |= 1 << uint(pos-64)
	}
	return c
}

func (c Codeword) clear(pos int) Codeword {
	if pos < 64 {
		c.Lo &^= 1 << uint(pos)
	} else {
		c.Hi &^= 1 << uint(pos-64)
	}
	return c
}

// dataPositions lists the 64 codeword positions that carry data bits:
// every position in [1,72) that is not a power of two, plus position 0
// being reserved for overall parity. Computed once at package
// initialization (a deterministic pure computation).
var dataPositions = func() [64]int {
	var out [64]int
	i := 0
	for pos := 1; pos < 72; pos++ {
		if pos&(pos-1) == 0 { // power of two: check bit
			continue
		}
		out[i] = pos
		i++
	}
	if i != 64 {
		panic("ecc: data position layout broken")
	}
	return out
}()

// Encode produces the SEC-DED codeword for a 64-bit data word.
func Encode(data uint64) Codeword {
	var c Codeword
	for i, pos := range dataPositions {
		c = c.set(pos, uint(data>>uint(i))&1)
	}
	// Hamming check bits: check bit at position p=2^k covers every
	// position with bit k set.
	for k := 0; k < 7; k++ {
		p := 1 << uint(k)
		var parity uint
		for pos := 1; pos < 72; pos++ {
			if pos != p && pos&p != 0 {
				parity ^= c.Bit(pos)
			}
		}
		c = c.set(p, parity)
	}
	// Overall parity over positions 1..71.
	c = c.set(0, c.parityTail())
	return c
}

// parityTail computes the XOR of bits 1..71.
func (c Codeword) parityTail() uint {
	all := uint(bits.OnesCount64(c.Lo)) + uint(bits.OnesCount8(c.Hi))
	return (all - c.Bit(0)) & 1
}

// Decode extracts the data word, correcting a single-bit error if
// present. It returns ErrDoubleError when two errors are detected; the
// returned data is then the best-effort extraction and must not be
// trusted.
func Decode(c Codeword) (data uint64, status Status, err error) {
	// Syndrome: XOR of positions of all set bits in 1..71 vs the stored
	// check bits. Equivalent formulation: for each k, parity over all
	// positions with bit k set (including the check bit itself) must be
	// zero.
	syndrome := 0
	for k := 0; k < 7; k++ {
		p := 1 << uint(k)
		var parity uint
		for pos := 1; pos < 72; pos++ {
			if pos&p != 0 {
				parity ^= c.Bit(pos)
			}
		}
		if parity != 0 {
			syndrome |= p
		}
	}
	overallOK := c.Bit(0) == c.parityTail()

	switch {
	case syndrome == 0 && overallOK:
		status = OK
	case syndrome == 0 && !overallOK:
		// The overall parity bit itself flipped.
		c = c.Flip(0)
		status = Corrected
	case syndrome != 0 && !overallOK:
		// Single-bit error at position syndrome.
		if syndrome < 72 {
			c = c.Flip(syndrome)
		}
		status = Corrected
	default: // syndrome != 0 && overallOK
		status = DoubleError
	}

	for i, pos := range dataPositions {
		data |= uint64(c.Bit(pos)) << uint(i)
	}
	if status == DoubleError {
		return data, status, ErrDoubleError
	}
	return data, status, nil
}

// Vote3 performs bitwise majority voting over three word replicas. ok
// reports whether all three replicas agreed; the voted word is correct
// whenever at most one replica is corrupted in any given bit position.
func Vote3(a, b, c uint64) (voted uint64, ok bool) {
	voted = (a & b) | (a & c) | (b & c)
	return voted, a == b && b == c
}

// Parity returns the even-parity bit of a word (1 if the number of set
// bits is odd). Used by the cheap error-*detecting* methods.
func Parity(v uint64) uint {
	return uint(bits.OnesCount64(v)) & 1
}
