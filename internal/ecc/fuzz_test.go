package ecc

import "testing"

// FuzzDecode checks that Decode never panics on arbitrary codewords and
// never reports OK for a codeword that differs from the re-encoding of
// its own decoded data (no silent acceptance of corrupt words).
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0))
	cw := Encode(0xDEADBEEF)
	f.Add(cw.Lo, cw.Hi)
	f.Fuzz(func(t *testing.T, lo uint64, hi byte) {
		c := Codeword{Lo: lo, Hi: hi}
		data, status, err := Decode(c)
		switch status {
		case OK:
			if err != nil {
				t.Fatalf("OK with error: %v", err)
			}
			if Encode(data) != c {
				t.Fatalf("OK but codeword %v is not Encode(%x)", c, data)
			}
		case Corrected:
			if err != nil {
				t.Fatalf("Corrected with error: %v", err)
			}
			// SEC-DED guarantees correction only for single errors;
			// ≥3 corrupted bits can legitimately miscorrect (the code's
			// minimum distance is 4). The invariant that always holds:
			// Corrected implies the input had odd parity error, so its
			// distance from any valid codeword — including the one the
			// decoder chose — is odd.
			want := Encode(data)
			diff := 0
			for pos := 0; pos < 72; pos++ {
				if want.Bit(pos) != c.Bit(pos) {
					diff++
				}
			}
			if diff%2 != 1 {
				t.Fatalf("Corrected at even distance %d from the chosen codeword", diff)
			}
		case DoubleError:
			if err == nil {
				t.Fatal("DoubleError without error")
			}
		default:
			t.Fatalf("unknown status %v", status)
		}
	})
}
