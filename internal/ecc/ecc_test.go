package ecc

import (
	"errors"
	"testing"
	"testing/quick"

	"aft/internal/xrand"
)

func TestRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, ^uint64(0), 0xDEADBEEFCAFEBABE, 1 << 63} {
		cw := Encode(v)
		got, status, err := Decode(cw)
		if err != nil {
			t.Fatalf("Decode(Encode(%x)) err = %v", v, err)
		}
		if status != OK {
			t.Fatalf("clean codeword status = %v", status)
		}
		if got != v {
			t.Fatalf("round trip %x -> %x", v, got)
		}
	}
}

func TestSingleErrorCorrectedAllPositions(t *testing.T) {
	const data = uint64(0xA5A5A5A5DEADBEEF)
	cw := Encode(data)
	for pos := 0; pos < 72; pos++ {
		got, status, err := Decode(cw.Flip(pos))
		if err != nil {
			t.Fatalf("pos %d: err = %v", pos, err)
		}
		if status != Corrected {
			t.Fatalf("pos %d: status = %v, want Corrected", pos, status)
		}
		if got != data {
			t.Fatalf("pos %d: data %x, want %x", pos, got, data)
		}
	}
}

func TestDoubleErrorDetectedAllPairs(t *testing.T) {
	const data = 0x0123456789ABCDEF
	cw := Encode(data)
	// Exhaustive over all 72*71/2 pairs.
	for i := 0; i < 72; i++ {
		for j := i + 1; j < 72; j++ {
			_, status, err := Decode(cw.Flip(i).Flip(j))
			if status != DoubleError {
				t.Fatalf("pair (%d,%d): status = %v, want DoubleError", i, j, status)
			}
			if !errors.Is(err, ErrDoubleError) {
				t.Fatalf("pair (%d,%d): err = %v", i, j, err)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		got, status, err := Decode(Encode(v))
		return err == nil && status == OK && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleErrorProperty(t *testing.T) {
	f := func(v uint64, pos uint8) bool {
		p := int(pos) % 72
		got, status, err := Decode(Encode(v).Flip(p))
		return err == nil && status == Corrected && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodewordBitFlip(t *testing.T) {
	var c Codeword
	for _, pos := range []int{0, 5, 63, 64, 71} {
		c2 := c.Flip(pos)
		if c2.Bit(pos) != 1 {
			t.Fatalf("Flip(%d) did not set bit", pos)
		}
		if c2.Flip(pos) != c {
			t.Fatalf("double Flip(%d) not identity", pos)
		}
	}
}

func TestVote3Majority(t *testing.T) {
	tests := []struct {
		a, b, c uint64
		want    uint64
		wantOK  bool
	}{
		{5, 5, 5, 5, true},
		{5, 5, 9, 5, false},
		{5, 9, 5, 5, false},
		{9, 5, 5, 5, false},
		// Bitwise: disagreements in different bits still recover.
		{0b111, 0b101, 0b011, 0b111, false},
	}
	for _, tt := range tests {
		got, ok := Vote3(tt.a, tt.b, tt.c)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("Vote3(%b,%b,%b) = %b,%v want %b,%v", tt.a, tt.b, tt.c, got, ok, tt.want, tt.wantOK)
		}
	}
}

// Property: Vote3 recovers the true word under any single corrupted
// replica.
func TestVote3SingleCorruptionProperty(t *testing.T) {
	f := func(v, corruption uint64, which uint8) bool {
		r := [3]uint64{v, v, v}
		r[which%3] ^= corruption
		got, _ := Vote3(r[0], r[1], r[2])
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParity(t *testing.T) {
	if Parity(0) != 0 {
		t.Fatal("Parity(0) != 0")
	}
	if Parity(1) != 1 {
		t.Fatal("Parity(1) != 1")
	}
	if Parity(0b11) != 0 {
		t.Fatal("Parity(0b11) != 0")
	}
	if Parity(^uint64(0)) != 0 {
		t.Fatal("Parity(all ones) != 0")
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || DoubleError.String() != "double-error" {
		t.Fatal("status names wrong")
	}
	if Status(42).String() != "Status(42)" {
		t.Fatal("unknown status name wrong")
	}
}

func TestRandomizedStress(t *testing.T) {
	rng := xrand.New(1234)
	for i := 0; i < 2000; i++ {
		v := rng.Uint64()
		cw := Encode(v)
		switch i % 3 {
		case 0:
			got, _, err := Decode(cw)
			if err != nil || got != v {
				t.Fatalf("clean decode failed: %v %x", err, got)
			}
		case 1:
			pos := rng.Intn(72)
			got, status, err := Decode(cw.Flip(pos))
			if err != nil || status != Corrected || got != v {
				t.Fatalf("single-error decode failed at pos %d", pos)
			}
		case 2:
			p1 := rng.Intn(72)
			p2 := rng.Intn(72)
			if p1 == p2 {
				continue
			}
			_, status, _ := Decode(cw.Flip(p1).Flip(p2))
			if status != DoubleError {
				t.Fatalf("double error (%d,%d) not detected: %v", p1, p2, status)
			}
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	cw := Encode(0xDEADBEEF)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = Decode(cw)
	}
}

func BenchmarkDecodeCorrecting(b *testing.B) {
	cw := Encode(0xDEADBEEF).Flip(13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = Decode(cw)
	}
}
