package contracts

import (
	"errors"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Fatal("nameless contract accepted")
	}
}

func TestCleanRun(t *testing.T) {
	state := 5
	c, err := New("counter")
	if err != nil {
		t.Fatal(err)
	}
	c.Require("state positive", Guard(func() bool { return state > 0 }, "state <= 0")).
		Ensure("state grew", Guard(func() bool { return state > 5 }, "state did not grow")).
		Maintain("state bounded", Guard(func() bool { return state < 100 }, "state out of bounds"))

	if err := c.Run(func() error { state++; return nil }); err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) != 0 {
		t.Fatalf("violations = %v", c.Violations())
	}
	if c.Calls() != 1 {
		t.Fatalf("calls = %d", c.Calls())
	}
}

func TestPreconditionViolation(t *testing.T) {
	ready := false
	c, err := New("svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Require("ready", Guard(func() bool { return ready }, "not ready"))
	ran := false
	err = c.Run(func() error { ran = true; return nil })
	var v Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v", err)
	}
	if v.Kind != Precondition || v.Condition != "ready" {
		t.Fatalf("violation = %+v", v)
	}
	if ran {
		t.Fatal("op ran despite a failed pre-condition")
	}
	if !strings.Contains(v.Error(), `pre-condition "ready" violated`) {
		t.Fatalf("Error() = %q", v.Error())
	}
}

func TestPostconditionViolation(t *testing.T) {
	c, err := New("svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Ensure("result stored", Guard(func() bool { return false }, "nothing stored"))
	err = c.Run(func() error { return nil })
	var v Violation
	if !errors.As(err, &v) || v.Kind != Postcondition {
		t.Fatalf("err = %v", err)
	}
}

func TestInvariantCheckedBothSides(t *testing.T) {
	healthy := true
	c, err := New("svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Maintain("healthy", Guard(func() bool { return healthy }, "sick"))

	// The op breaks the invariant: caught in the "after" phase.
	err = c.Run(func() error { healthy = false; return nil })
	var v Violation
	if !errors.As(err, &v) || v.Kind != Invariant || v.Phase != "after" {
		t.Fatalf("err = %v", err)
	}
	// Still broken: the next call is caught in the "before" phase.
	err = c.Run(func() error { return nil })
	if !errors.As(err, &v) || v.Phase != "before" {
		t.Fatalf("err = %v", err)
	}
}

func TestOpErrorSkipsPostconditions(t *testing.T) {
	postChecked := false
	c, err := New("svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Ensure("never", func() error { postChecked = true; return nil })
	opErr := errors.New("supplier failed")
	if err := c.Run(func() error { return opErr }); !errors.Is(err, opErr) {
		t.Fatalf("err = %v", err)
	}
	if postChecked {
		t.Fatal("post-condition checked after a failed op")
	}
}

func TestListeners(t *testing.T) {
	c, err := New("svc")
	if err != nil {
		t.Fatal(err)
	}
	c.Require("nope", Guard(func() bool { return false }, "always fails"))
	var seen []Violation
	c.OnViolation(func(v Violation) { seen = append(seen, v) })
	c.OnViolation(nil)
	_ = c.Run(func() error { return nil })
	_ = c.Run(func() error { return nil })
	if len(seen) != 2 {
		t.Fatalf("listener saw %d violations", len(seen))
	}
	if len(c.Violations()) != 2 {
		t.Fatalf("recorded %d violations", len(c.Violations()))
	}
}

func TestWrap(t *testing.T) {
	c, err := New("svc")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	wrapped := c.Wrap(func() error { n++; return nil })
	if err := wrapped(); err != nil {
		t.Fatal(err)
	}
	if err := wrapped(); err != nil {
		t.Fatal(err)
	}
	if n != 2 || c.Calls() != 2 {
		t.Fatalf("n=%d calls=%d", n, c.Calls())
	}
}

func TestUnwrap(t *testing.T) {
	cause := errors.New("root cause")
	v := Violation{Contract: "c", Kind: Invariant, Condition: "x", Cause: cause}
	if !errors.Is(v, cause) {
		t.Fatal("Unwrap broken")
	}
}

func TestKindString(t *testing.T) {
	if Precondition.String() != "pre-condition" ||
		Postcondition.String() != "post-condition" ||
		Invariant.String() != "invariant" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind name wrong")
	}
}

// TestArianeScenario expresses the Ariane-501 reuse failure as a
// contract: the Ariane 4 software's implicit assumption becomes an
// explicit pre-condition, and the new flight profile violates it before
// the conversion executes, instead of overflowing silently.
func TestArianeScenario(t *testing.T) {
	horizontalVelocity := int64(20_000) // Ariane 4 envelope
	c, err := New("irs.bh-conversion")
	if err != nil {
		t.Fatal(err)
	}
	c.Require("velocity fits int16",
		Guard(func() bool { return horizontalVelocity <= 32767 }, "horizontal velocity exceeds int16"))

	convert := func() error {
		// The fatal conversion, now guarded.
		_ = int16(horizontalVelocity)
		return nil
	}
	if err := c.Run(convert); err != nil {
		t.Fatalf("Ariane 4 profile: %v", err)
	}
	// Ariane 5 is faster.
	horizontalVelocity = 40_000
	err = c.Run(convert)
	var v Violation
	if !errors.As(err, &v) {
		t.Fatalf("the clash went undetected: %v", err)
	}
	if v.Condition != "velocity fits int16" {
		t.Fatalf("violation = %+v", v)
	}
}
