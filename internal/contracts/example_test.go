package contracts_test

import (
	"fmt"

	"aft/internal/contracts"
)

// ExampleContract guards the Ariane conversion with an explicit
// pre-condition.
func ExampleContract() {
	velocity := int64(40_000) // the Ariane 5 profile
	c, _ := contracts.New("irs.bh-conversion")
	c.Require("velocity fits int16", contracts.Guard(
		func() bool { return velocity <= 32767 },
		"horizontal velocity exceeds int16"))

	err := c.Run(func() error {
		_ = int16(velocity)
		return nil
	})
	fmt.Println(err)
	// Output:
	// contract "irs.bh-conversion": pre-condition "velocity fits int16" violated: horizontal velocity exceeds int16
}
