// Package contracts implements Design by Contract (Meyer 1992), which
// the paper's §4 singles out as a tool that "forces the designer to
// consider explicitly the mutual dependencies and assumptions among
// correlated software components" and thereby "facilitates assumption
// failures detection and — to some extent — treatment".
//
// A Contract names the obligations between a client and a supplier:
// pre-conditions (what the client owes), post-conditions (what the
// supplier owes back), and invariants (what must hold on both sides of
// every call). Wrapped operations check all three; violations are
// first-class values that listeners — e.g. the assumption executive or
// the §5 agent web — can consume.
package contracts

import (
	"errors"
	"fmt"
	"sync"
)

// Kind distinguishes the three obligation classes.
type Kind int

// Obligation kinds.
const (
	// Precondition is the client's obligation before the call.
	Precondition Kind = iota + 1
	// Postcondition is the supplier's obligation after the call.
	Postcondition
	// Invariant must hold before and after every call.
	Invariant
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Precondition:
		return "pre-condition"
	case Postcondition:
		return "post-condition"
	case Invariant:
		return "invariant"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Condition is one named, checkable obligation. Check returns nil when
// the obligation holds.
type Condition struct {
	// Name identifies the obligation ("velocity fits int16").
	Name string
	// Check evaluates the obligation against current state.
	Check func() error
}

// Violation is a broken obligation: an assumption failure at the
// component boundary.
type Violation struct {
	// Contract is the violated contract's name.
	Contract string
	// Kind is the obligation class.
	Kind Kind
	// Condition is the broken obligation's name.
	Condition string
	// Cause is the error the check returned.
	Cause error
	// Phase is "before" or "after" for invariants, "" otherwise.
	Phase string
}

// Error implements error, so violations can travel as errors.
func (v Violation) Error() string {
	phase := ""
	if v.Phase != "" {
		phase = " (" + v.Phase + " call)"
	}
	return fmt.Sprintf("contract %q: %s %q violated%s: %v",
		v.Contract, v.Kind, v.Condition, phase, v.Cause)
}

// Unwrap exposes the underlying cause.
func (v Violation) Unwrap() error { return v.Cause }

// Contract is the named bundle of obligations between two components.
type Contract struct {
	name       string
	pres       []Condition
	posts      []Condition
	invariants []Condition

	mu         sync.Mutex
	listeners  []func(Violation)
	violations []Violation
	calls      int64
}

// New builds an empty contract.
func New(name string) (*Contract, error) {
	if name == "" {
		return nil, errors.New("contracts: contract needs a name")
	}
	return &Contract{name: name}, nil
}

// Name returns the contract's name.
func (c *Contract) Name() string { return c.name }

// Require adds a pre-condition.
func (c *Contract) Require(name string, check func() error) *Contract {
	c.pres = append(c.pres, Condition{Name: name, Check: check})
	return c
}

// Ensure adds a post-condition.
func (c *Contract) Ensure(name string, check func() error) *Contract {
	c.posts = append(c.posts, Condition{Name: name, Check: check})
	return c
}

// Maintain adds an invariant.
func (c *Contract) Maintain(name string, check func() error) *Contract {
	c.invariants = append(c.invariants, Condition{Name: name, Check: check})
	return c
}

// OnViolation registers a listener for every violation.
func (c *Contract) OnViolation(fn func(Violation)) {
	if fn == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, fn)
}

// Violations returns a copy of all recorded violations.
func (c *Contract) Violations() []Violation {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Calls reports how many wrapped calls ran.
func (c *Contract) Calls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func (c *Contract) report(v Violation) {
	c.mu.Lock()
	c.violations = append(c.violations, v)
	listeners := make([]func(Violation), len(c.listeners))
	copy(listeners, c.listeners)
	c.mu.Unlock()
	for _, fn := range listeners {
		fn(v)
	}
}

func (c *Contract) checkAll(kind Kind, phase string, conds []Condition) error {
	for _, cond := range conds {
		if err := cond.Check(); err != nil {
			v := Violation{
				Contract:  c.name,
				Kind:      kind,
				Condition: cond.Name,
				Cause:     err,
				Phase:     phase,
			}
			c.report(v)
			return v
		}
	}
	return nil
}

// Run executes op under the contract: invariants and pre-conditions
// before, invariants and post-conditions after. The first violation
// aborts and is returned; an op error is returned as-is (post-conditions
// are not checked on a failed op, matching DbC semantics where the
// supplier owes nothing if it signals failure).
func (c *Contract) Run(op func() error) error {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()

	if err := c.checkAll(Invariant, "before", c.invariants); err != nil {
		return err
	}
	if err := c.checkAll(Precondition, "", c.pres); err != nil {
		return err
	}
	if err := op(); err != nil {
		return err
	}
	if err := c.checkAll(Postcondition, "", c.posts); err != nil {
		return err
	}
	return c.checkAll(Invariant, "after", c.invariants)
}

// Wrap returns op guarded by the contract.
func (c *Contract) Wrap(op func() error) func() error {
	return func() error { return c.Run(op) }
}

// Guard is a tiny helper for boolean conditions.
func Guard(ok func() bool, msg string) func() error {
	return func() error {
		if ok() {
			return nil
		}
		return errors.New(msg)
	}
}
