// Package ftpatterns implements the fault-tolerance design patterns
// whose choice the paper's §3.2 postpones to run time:
//
//   - Redoing ("repeat on failure"), the natural choice under assumption
//     e1: "the physical environment shall exhibit transient faults";
//   - Reconfiguration ("replace on failure"), the natural choice under
//     e2: "the physical environment shall exhibit permanent faults".
//
// The paper's two clash claims are directly observable through the
// Result accounting:
//
//  1. a clash of e1 (redoing under permanent faults) "implies a livelock
//     (endless repetition)" — visible as retry exhaustion with maximal
//     Attempts;
//  2. a clash of e2 (reconfiguration under transient faults) "implies an
//     unnecessary expenditure of resources" — visible as spare
//     Activations burned on faults that would have vanished by
//     themselves.
package ftpatterns

import (
	"errors"
	"fmt"

	"aft/internal/faults"
	"aft/internal/xrand"
)

// Version is one implementation of a replaceable component. It returns
// nil on success and an error when the environment's fault strikes it.
type Version func() error

// ErrVersionFault is the generic failure a Version reports when struck.
var ErrVersionFault = errors.New("ftpatterns: version failed")

// Errors returned by pattern invocations.
var (
	// ErrRetriesExhausted reports a Redoing livelock cut short by the
	// retry bound: the e1-vs-permanent clash of the paper.
	ErrRetriesExhausted = errors.New("ftpatterns: retries exhausted (livelock under permanent fault)")
	// ErrSparesExhausted reports a Reconfiguration that ran out of
	// spare versions.
	ErrSparesExhausted = errors.New("ftpatterns: spare versions exhausted")
)

// Result accounts for one pattern invocation.
type Result struct {
	// OK reports whether the component eventually produced its service.
	OK bool
	// Attempts is the number of version executions performed.
	Attempts int
	// Activations is the number of spare activations performed (the
	// resource expenditure of reconfiguration).
	Activations int
	// Err is the terminal error for failed invocations.
	Err error
}

// Pattern is a fault-tolerance design pattern wrapped around a
// component.
type Pattern interface {
	// Name identifies the pattern.
	Name() string
	// Invoke runs the component once under the pattern's policy.
	Invoke() Result
	// Stats reports cumulative attempts and activations across all
	// invocations.
	Stats() (attempts, activations int64)
}

// --- Redoing ----------------------------------------------------------

// Redoing retries the same version on failure, up to a bound. The bound
// models the watchdog that would cut a true livelock; hitting it is the
// observable signature of the e1 clash.
type Redoing struct {
	version    Version
	maxRetries int

	attempts    int64
	exhaustions int64
}

var _ Pattern = (*Redoing)(nil)

// NewRedoing builds the pattern. maxRetries is the number of *re*-tries
// after the first attempt and must be non-negative.
func NewRedoing(version Version, maxRetries int) (*Redoing, error) {
	if version == nil {
		return nil, fmt.Errorf("ftpatterns: nil version")
	}
	if maxRetries < 0 {
		return nil, fmt.Errorf("ftpatterns: negative retry bound %d", maxRetries)
	}
	return &Redoing{version: version, maxRetries: maxRetries}, nil
}

// Name implements Pattern.
func (*Redoing) Name() string { return "redoing" }

// Invoke implements Pattern.
func (r *Redoing) Invoke() Result {
	var res Result
	for i := 0; i <= r.maxRetries; i++ {
		res.Attempts++
		r.attempts++
		if err := r.version(); err == nil {
			res.OK = true
			return res
		}
	}
	r.exhaustions++
	res.Err = ErrRetriesExhausted
	return res
}

// Stats implements Pattern.
func (r *Redoing) Stats() (attempts, activations int64) { return r.attempts, 0 }

// Exhaustions reports how many invocations hit the retry bound.
func (r *Redoing) Exhaustions() int64 { return r.exhaustions }

// --- Reconfiguration --------------------------------------------------

// Reconfiguration replaces the failed version with the next spare: the
// 2-version primary/secondary scheme of the paper's Fig. 3 generalized
// to any number of spares. The switch is persistent across invocations —
// once the primary is abandoned, service continues on the spare.
type Reconfiguration struct {
	versions []Version
	current  int

	attempts    int64
	activations int64
}

var _ Pattern = (*Reconfiguration)(nil)

// NewReconfiguration builds the pattern over a primary and its spares.
func NewReconfiguration(versions ...Version) (*Reconfiguration, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("ftpatterns: reconfiguration needs at least one version")
	}
	for i, v := range versions {
		if v == nil {
			return nil, fmt.Errorf("ftpatterns: version %d is nil", i)
		}
	}
	vs := make([]Version, len(versions))
	copy(vs, versions)
	return &Reconfiguration{versions: vs}, nil
}

// Name implements Pattern.
func (*Reconfiguration) Name() string { return "reconfiguration" }

// Invoke implements Pattern.
func (r *Reconfiguration) Invoke() Result {
	var res Result
	for r.current < len(r.versions) {
		res.Attempts++
		r.attempts++
		if err := r.versions[r.current](); err == nil {
			res.OK = true
			return res
		}
		// Replace on failure: activate the next spare.
		r.current++
		if r.current < len(r.versions) {
			res.Activations++
			r.activations++
		}
	}
	res.Err = ErrSparesExhausted
	return res
}

// Stats implements Pattern.
func (r *Reconfiguration) Stats() (attempts, activations int64) {
	return r.attempts, r.activations
}

// Current reports the index of the active version (0 = primary).
func (r *Reconfiguration) Current() int { return r.current }

// Reset reverts to the primary version, modelling a repair.
func (r *Reconfiguration) Reset() { r.current = 0 }

// --- Version builders -------------------------------------------------

// FaultyVersion builds a Version that fails on every step where the
// fault model strikes.
func FaultyVersion(m faults.Model, rng *xrand.Rand) Version {
	return func() error {
		if m.Step(rng) {
			return ErrVersionFault
		}
		return nil
	}
}

// LatchedVersion builds a Version that fails while the latch is tripped
// (a permanent or intermittent fault bound to this version only — its
// spares are unaffected).
func LatchedVersion(l *faults.Latch) Version {
	return func() error {
		if l.Tripped() {
			return ErrVersionFault
		}
		return nil
	}
}

// ReliableVersion always succeeds.
func ReliableVersion() Version {
	return func() error { return nil }
}
