package ftpatterns

import (
	"errors"
	"testing"

	"aft/internal/faults"
	"aft/internal/xrand"
)

func TestRedoingValidation(t *testing.T) {
	if _, err := NewRedoing(nil, 3); err == nil {
		t.Fatal("nil version accepted")
	}
	if _, err := NewRedoing(ReliableVersion(), -1); err == nil {
		t.Fatal("negative retry bound accepted")
	}
}

func TestRedoingSucceedsFirstTry(t *testing.T) {
	r, err := NewRedoing(ReliableVersion(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Invoke()
	if !res.OK || res.Attempts != 1 || res.Activations != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRedoingMasksTransient(t *testing.T) {
	// Fail twice, then succeed — the e1 match case.
	failures := 2
	v := func() error {
		if failures > 0 {
			failures--
			return ErrVersionFault
		}
		return nil
	}
	r, err := NewRedoing(v, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Invoke()
	if !res.OK || res.Attempts != 3 {
		t.Fatalf("result = %+v, want OK after 3 attempts", res)
	}
}

func TestRedoingLivelockUnderPermanent(t *testing.T) {
	// The paper's clash 1: redoing a permanently failed component loops
	// forever; the retry bound converts the livelock into exhaustion.
	var latch faults.Latch
	latch.Trip()
	r, err := NewRedoing(LatchedVersion(&latch), 10)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Invoke()
	if res.OK {
		t.Fatal("redoing succeeded under a permanent fault")
	}
	if !errors.Is(res.Err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", res.Err)
	}
	if res.Attempts != 11 {
		t.Fatalf("attempts = %d, want 11 (1 + 10 retries: maximal waste)", res.Attempts)
	}
	if r.Exhaustions() != 1 {
		t.Fatalf("exhaustions = %d", r.Exhaustions())
	}
}

func TestReconfigurationValidation(t *testing.T) {
	if _, err := NewReconfiguration(); err == nil {
		t.Fatal("empty version list accepted")
	}
	if _, err := NewReconfiguration(ReliableVersion(), nil); err == nil {
		t.Fatal("nil spare accepted")
	}
}

func TestReconfigurationSwitchesOnPermanent(t *testing.T) {
	// The e2 match case (Fig. 3's D2): primary c3.1 has a permanent
	// fault; the secondary c3.2 takes over, persistently.
	var latch faults.Latch
	latch.Trip()
	r, err := NewReconfiguration(LatchedVersion(&latch), ReliableVersion())
	if err != nil {
		t.Fatal(err)
	}
	res := r.Invoke()
	if !res.OK || res.Attempts != 2 || res.Activations != 1 {
		t.Fatalf("result = %+v, want OK with 1 activation", res)
	}
	if r.Current() != 1 {
		t.Fatalf("current = %d, want 1 (secondary)", r.Current())
	}
	// Next invocation goes straight to the spare: no further cost.
	res = r.Invoke()
	if !res.OK || res.Attempts != 1 || res.Activations != 0 {
		t.Fatalf("second invocation = %+v", res)
	}
}

func TestReconfigurationWastesSparesOnTransients(t *testing.T) {
	// The paper's clash 2: a single transient fault permanently burns a
	// spare even though redoing would have recovered for free.
	calls := 0
	flaky := func() error {
		calls++
		if calls == 1 {
			return ErrVersionFault // one transient blip
		}
		return nil
	}
	r, err := NewReconfiguration(flaky, ReliableVersion())
	if err != nil {
		t.Fatal(err)
	}
	res := r.Invoke()
	if !res.OK {
		t.Fatalf("result = %+v", res)
	}
	if res.Activations != 1 {
		t.Fatalf("activations = %d, want 1 (the wasted spare)", res.Activations)
	}
	if r.Current() != 1 {
		t.Fatal("primary was not abandoned — clash accounting broken")
	}
}

func TestReconfigurationExhaustsSpares(t *testing.T) {
	bad := func() error { return ErrVersionFault }
	r, err := NewReconfiguration(bad, bad, bad)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Invoke()
	if res.OK || !errors.Is(res.Err, ErrSparesExhausted) {
		t.Fatalf("result = %+v", res)
	}
	if res.Attempts != 3 || res.Activations != 2 {
		t.Fatalf("attempts=%d activations=%d, want 3/2", res.Attempts, res.Activations)
	}
	// Exhausted stays exhausted.
	res = r.Invoke()
	if res.OK || res.Attempts != 0 {
		t.Fatalf("post-exhaustion invocation = %+v", res)
	}
}

func TestReconfigurationReset(t *testing.T) {
	var latch faults.Latch
	latch.Trip()
	r, err := NewReconfiguration(LatchedVersion(&latch), ReliableVersion())
	if err != nil {
		t.Fatal(err)
	}
	r.Invoke()
	latch.Repair()
	r.Reset()
	res := r.Invoke()
	if !res.OK || res.Attempts != 1 || r.Current() != 0 {
		t.Fatalf("after reset: %+v current=%d", res, r.Current())
	}
}

func TestStats(t *testing.T) {
	var latch faults.Latch
	latch.Trip()
	re, _ := NewRedoing(LatchedVersion(&latch), 2)
	re.Invoke()
	re.Invoke()
	attempts, activations := re.Stats()
	if attempts != 6 || activations != 0 {
		t.Fatalf("redoing stats = %d/%d", attempts, activations)
	}
	rc, _ := NewReconfiguration(LatchedVersion(&latch), ReliableVersion())
	rc.Invoke()
	rc.Invoke()
	attempts, activations = rc.Stats()
	if attempts != 3 || activations != 1 {
		t.Fatalf("reconfiguration stats = %d/%d", attempts, activations)
	}
}

func TestFaultyVersion(t *testing.T) {
	rng := xrand.New(5)
	v := FaultyVersion(faults.Bernoulli{P: 0.5}, rng)
	failuresSeen, successes := 0, 0
	for i := 0; i < 1000; i++ {
		if err := v(); err != nil {
			if !errors.Is(err, ErrVersionFault) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failuresSeen++
		} else {
			successes++
		}
	}
	if failuresSeen < 400 || failuresSeen > 600 {
		t.Fatalf("Bernoulli(0.5) version failed %d/1000 times", failuresSeen)
	}
	if successes == 0 {
		t.Fatal("no successes")
	}
}

func TestLatchedVersionFollowsLatch(t *testing.T) {
	var l faults.Latch
	v := LatchedVersion(&l)
	if err := v(); err != nil {
		t.Fatal("untripped latch failed")
	}
	l.Trip()
	if err := v(); err == nil {
		t.Fatal("tripped latch succeeded")
	}
	l.Repair()
	if err := v(); err != nil {
		t.Fatal("repaired latch failed")
	}
}

func TestPatternInterfaces(t *testing.T) {
	var patterns []Pattern
	re, _ := NewRedoing(ReliableVersion(), 1)
	rc, _ := NewReconfiguration(ReliableVersion())
	patterns = append(patterns, re, rc)
	names := map[string]bool{}
	for _, p := range patterns {
		names[p.Name()] = true
		if res := p.Invoke(); !res.OK {
			t.Fatalf("%s failed on reliable version", p.Name())
		}
	}
	if !names["redoing"] || !names["reconfiguration"] {
		t.Fatalf("names = %v", names)
	}
}
