package ftpatterns

import (
	"errors"
	"fmt"
)

// ErrAlternatesExhausted reports a recovery block whose every alternate
// failed its acceptance test.
var ErrAlternatesExhausted = errors.New("ftpatterns: recovery block alternates exhausted")

// RecoveryBlock implements the classic recovery-block scheme (Randell):
// a primary and ordered alternates, an acceptance test that validates
// each attempt, and state restoration before every retry with a
// different alternate.
//
// Its policy sits between the two §3.2 patterns: like redoing, every
// invocation starts from the primary (so transients cost nothing
// lasting); like reconfiguration, a failing primary does not block the
// invocation (alternates serve it). What it cannot do is *learn* — a
// permanent primary fault costs one wasted attempt on every invocation,
// which is exactly the niche the paper's adaptive strategy fills.
type RecoveryBlock struct {
	versions []Version
	accept   func() error
	restore  func()

	attempts  int64
	fallbacks int64
}

var _ Pattern = (*RecoveryBlock)(nil)

// NewRecoveryBlock builds a recovery block from a primary and its
// alternates. accept validates the post-state after a version ran (nil
// means "a nil version error is acceptance enough"); restore rolls the
// state back before an alternate runs (nil means stateless).
func NewRecoveryBlock(accept func() error, restore func(), versions ...Version) (*RecoveryBlock, error) {
	if len(versions) == 0 {
		return nil, fmt.Errorf("ftpatterns: recovery block needs at least one version")
	}
	for i, v := range versions {
		if v == nil {
			return nil, fmt.Errorf("ftpatterns: version %d is nil", i)
		}
	}
	vs := make([]Version, len(versions))
	copy(vs, versions)
	return &RecoveryBlock{versions: vs, accept: accept, restore: restore}, nil
}

// Name implements Pattern.
func (*RecoveryBlock) Name() string { return "recovery-block" }

// Invoke implements Pattern: try the primary, validate with the
// acceptance test, fall through the alternates with state restoration.
func (r *RecoveryBlock) Invoke() Result {
	var res Result
	for i, v := range r.versions {
		if i > 0 {
			if r.restore != nil {
				r.restore()
			}
			r.fallbacks++
			res.Activations++
		}
		res.Attempts++
		r.attempts++
		if err := v(); err != nil {
			continue
		}
		if r.accept != nil {
			if err := r.accept(); err != nil {
				continue
			}
		}
		res.OK = true
		return res
	}
	res.Err = ErrAlternatesExhausted
	return res
}

// Stats implements Pattern.
func (r *RecoveryBlock) Stats() (attempts, activations int64) {
	return r.attempts, r.fallbacks
}
