package ftpatterns

import (
	"errors"
	"testing"

	"aft/internal/faults"
)

func TestRecoveryBlockValidation(t *testing.T) {
	if _, err := NewRecoveryBlock(nil, nil); err == nil {
		t.Fatal("empty version list accepted")
	}
	if _, err := NewRecoveryBlock(nil, nil, ReliableVersion(), nil); err == nil {
		t.Fatal("nil alternate accepted")
	}
}

func TestRecoveryBlockPrimarySucceeds(t *testing.T) {
	rb, err := NewRecoveryBlock(nil, nil, ReliableVersion(), ReliableVersion())
	if err != nil {
		t.Fatal(err)
	}
	res := rb.Invoke()
	if !res.OK || res.Attempts != 1 || res.Activations != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRecoveryBlockFallsThroughToAlternate(t *testing.T) {
	var latch faults.Latch
	latch.Trip()
	rb, err := NewRecoveryBlock(nil, nil,
		LatchedVersion(&latch), ReliableVersion())
	if err != nil {
		t.Fatal(err)
	}
	res := rb.Invoke()
	if !res.OK || res.Attempts != 2 || res.Activations != 1 {
		t.Fatalf("result = %+v", res)
	}
	// Unlike reconfiguration, the next invocation starts at the primary
	// again: the permanent fault costs one attempt every time.
	res = rb.Invoke()
	if !res.OK || res.Attempts != 2 {
		t.Fatalf("second invocation = %+v (recovery blocks do not learn)", res)
	}
}

func TestRecoveryBlockAcceptanceTestRejects(t *testing.T) {
	// The primary "succeeds" but leaves a state the acceptance test
	// rejects — the defining recovery-block feature.
	state := 0
	sloppy := func() error { state = -1; return nil } // wrong result, no error
	careful := func() error { state = 42; return nil }
	accept := func() error {
		if state < 0 {
			return errors.New("acceptance: negative state")
		}
		return nil
	}
	restored := 0
	restore := func() { state = 0; restored++ }

	rb, err := NewRecoveryBlock(accept, restore, sloppy, careful)
	if err != nil {
		t.Fatal(err)
	}
	res := rb.Invoke()
	if !res.OK || res.Attempts != 2 {
		t.Fatalf("result = %+v", res)
	}
	if state != 42 {
		t.Fatalf("state = %d, want 42", state)
	}
	if restored != 1 {
		t.Fatalf("restore ran %d times, want 1", restored)
	}
}

func TestRecoveryBlockExhaustion(t *testing.T) {
	bad := func() error { return ErrVersionFault }
	rb, err := NewRecoveryBlock(nil, nil, bad, bad, bad)
	if err != nil {
		t.Fatal(err)
	}
	res := rb.Invoke()
	if res.OK || !errors.Is(res.Err, ErrAlternatesExhausted) {
		t.Fatalf("result = %+v", res)
	}
	if res.Attempts != 3 || res.Activations != 2 {
		t.Fatalf("attempts/activations = %d/%d", res.Attempts, res.Activations)
	}
	// Unlike reconfiguration, exhaustion is per-invocation: the block
	// retries the full chain next time.
	res = rb.Invoke()
	if res.Attempts != 3 {
		t.Fatalf("post-exhaustion attempts = %d", res.Attempts)
	}
	attempts, fallbacks := rb.Stats()
	if attempts != 6 || fallbacks != 4 {
		t.Fatalf("stats = %d/%d", attempts, fallbacks)
	}
}

func TestRecoveryBlockIsAPattern(t *testing.T) {
	rb, err := NewRecoveryBlock(nil, nil, ReliableVersion())
	if err != nil {
		t.Fatal(err)
	}
	var p Pattern = rb
	if p.Name() != "recovery-block" {
		t.Fatalf("name = %q", p.Name())
	}
}

// TestThreePatternsUnderPermanentFault contrasts the three families on
// the same permanent fault: redoing livelocks, the recovery block pays a
// constant tax, reconfiguration learns.
func TestThreePatternsUnderPermanentFault(t *testing.T) {
	var latch faults.Latch
	latch.Trip()
	primary := LatchedVersion(&latch)
	spare := ReliableVersion()

	redo, _ := NewRedoing(primary, 3)
	rb, _ := NewRecoveryBlock(nil, nil, primary, spare)
	rc, _ := NewReconfiguration(primary, spare)

	const n = 50
	redoFailures := 0
	for i := 0; i < n; i++ {
		if !redo.Invoke().OK {
			redoFailures++
		}
		if !rb.Invoke().OK {
			t.Fatal("recovery block failed with a reliable alternate")
		}
		if !rc.Invoke().OK {
			t.Fatal("reconfiguration failed with a reliable spare")
		}
	}
	if redoFailures != n {
		t.Fatalf("redoing failures = %d, want %d", redoFailures, n)
	}
	redoAttempts, _ := redo.Stats()
	rbAttempts, _ := rb.Stats()
	rcAttempts, _ := rc.Stats()
	// Ordering: redoing (4 per invocation) > recovery block (2) >
	// reconfiguration (1 + the single switch).
	if !(redoAttempts > rbAttempts && rbAttempts > rcAttempts) {
		t.Fatalf("attempt ordering wrong: redo=%d rb=%d rc=%d",
			redoAttempts, rbAttempts, rcAttempts)
	}
}
