package nvp_test

import (
	"fmt"

	"aft/internal/nvp"
)

// ExampleExecutor shows the paper's footnote in action: the diverse
// scheme masks a design fault that pure replication votes into the
// result.
func ExampleExecutor() {
	good := func(v uint64) (uint64, error) { return v * v, nil }
	buggy := func(v uint64) (uint64, error) {
		if v%7 == 0 {
			return v*v + 1, nil // design fault
		}
		return v * v, nil
	}

	diverse, _ := nvp.New(good, good, buggy)
	replicated, _ := nvp.Replicate(3, buggy)

	d := diverse.Invoke(14)
	r := replicated.Invoke(14)
	fmt.Printf("diverse: %d, replicated: %d\n", d.Value, r.Value)
	// Output:
	// diverse: 196, replicated: 197
}
