package nvp

import (
	"errors"
	"testing"
	"testing/quick"
)

// square versions: three independently designed implementations, one of
// which carries a design fault on a subset of inputs.
func goodSquare(v uint64) (uint64, error) { return v * v, nil }

func shiftSquare(v uint64) (uint64, error) {
	// A "diverse design": repeated addition for small inputs, and the
	// multiply for large ones. Functionally identical, structurally
	// different.
	if v < 1000 {
		var acc uint64
		for i := uint64(0); i < v; i++ {
			acc += v
		}
		return acc, nil
	}
	return v * v, nil
}

// buggySquare has a design fault: off by one for multiples of 7.
func buggySquare(v uint64) (uint64, error) {
	if v%7 == 0 {
		return v*v + 1, nil
	}
	return v * v, nil
}

// crashySquare crashes on even inputs.
func crashySquare(v uint64) (uint64, error) {
	if v%2 == 0 {
		return 0, errors.New("design fault: even inputs unhandled")
	}
	return v * v, nil
}

func TestNewValidation(t *testing.T) {
	if _, err := New(goodSquare, shiftSquare); err == nil {
		t.Fatal("2 versions accepted")
	}
	if _, err := New(goodSquare, shiftSquare, buggySquare, crashySquare); err == nil {
		t.Fatal("even version count accepted")
	}
	if _, err := New(goodSquare, nil, buggySquare); err == nil {
		t.Fatal("nil version accepted")
	}
	e, err := New(goodSquare, shiftSquare, buggySquare)
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 3 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestMasksSingleDesignFault(t *testing.T) {
	e, err := New(goodSquare, shiftSquare, buggySquare)
	if err != nil {
		t.Fatal(err)
	}
	// Input 14 triggers buggySquare's fault; the two healthy versions
	// outvote it.
	res := e.Invoke(14)
	if !res.OK || res.Value != 196 {
		t.Fatalf("result = %+v", res)
	}
	if res.Agreement != 2 {
		t.Fatalf("agreement = %d, want 2", res.Agreement)
	}
	// DTOF: n=3, one dissenter -> 2-1 = 1.
	if res.DTOF != 1 {
		t.Fatalf("dtof = %d, want 1", res.DTOF)
	}
}

func TestMasksCrashFault(t *testing.T) {
	e, err := New(goodSquare, shiftSquare, crashySquare)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Invoke(4)
	if !res.OK || res.Value != 16 || res.Crashed != 1 {
		t.Fatalf("result = %+v", res)
	}
	v, err := e.InvokeErr(4)
	if err != nil || v != 16 {
		t.Fatalf("InvokeErr = %d, %v", v, err)
	}
}

func TestConsensusDTOFMax(t *testing.T) {
	e, err := New(goodSquare, shiftSquare, goodSquare)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Invoke(5)
	if res.DTOF != 2 {
		t.Fatalf("consensus dtof = %d, want 2", res.DTOF)
	}
}

// TestReplicationDoesNotMaskDesignFaults is the paper's footnote as a
// test: replicating one buggy version N times makes the bug win the
// vote unanimously.
func TestReplicationDoesNotMaskDesignFaults(t *testing.T) {
	replicated, err := Replicate(3, buggySquare)
	if err != nil {
		t.Fatal(err)
	}
	res := replicated.Invoke(14) // 14*14 = 196; the bug says 197
	if !res.OK {
		t.Fatal("replicated scheme lost majority?!")
	}
	if res.Value == 196 {
		t.Fatal("replication masked a design fault; the footnote's point is broken")
	}
	if res.Value != 197 {
		t.Fatalf("value = %d", res.Value)
	}

	// The diverse scheme on the same input gets it right.
	diverse, err := New(goodSquare, shiftSquare, buggySquare)
	if err != nil {
		t.Fatal(err)
	}
	if got := diverse.Invoke(14); !got.OK || got.Value != 196 {
		t.Fatalf("diverse scheme = %+v", got)
	}
}

func TestNoMajority(t *testing.T) {
	// Three versions disagreeing three ways.
	e, err := New(
		func(v uint64) (uint64, error) { return v, nil },
		func(v uint64) (uint64, error) { return v + 1, nil },
		func(v uint64) (uint64, error) { return v + 2, nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Invoke(10)
	if res.OK || res.DTOF != 0 {
		t.Fatalf("result = %+v", res)
	}
	if _, err := e.InvokeErr(10); !errors.Is(err, ErrNoMajority) {
		t.Fatalf("err = %v", err)
	}
	_, failures := e.Stats()
	if failures != 2 {
		t.Fatalf("failures = %d, want 2", failures)
	}
}

func TestMajorityCrashLosesQuorum(t *testing.T) {
	e, err := New(crashySquare, crashySquare, goodSquare)
	if err != nil {
		t.Fatal(err)
	}
	// Even input: two versions crash; the survivor alone is not a
	// strict majority of 3... it is 1 of 3: no.
	res := e.Invoke(8)
	if res.OK {
		t.Fatalf("single survivor won a majority: %+v", res)
	}
	if res.Crashed != 2 {
		t.Fatalf("crashed = %d", res.Crashed)
	}
}

// Property: with at most one faulty version of 5, adjudication always
// returns the correct square.
func TestSingleFaultMaskedProperty(t *testing.T) {
	f := func(input uint64, faultyIdx uint8) bool {
		input %= 1_000_000
		versions := make([]Version, 5)
		for i := range versions {
			versions[i] = goodSquare
		}
		versions[faultyIdx%5] = buggySquare
		e, err := New(versions...)
		if err != nil {
			return false
		}
		res := e.Invoke(input)
		return res.OK && res.Value == input*input
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInvoke3Versions(b *testing.B) {
	e, err := New(goodSquare, shiftSquare, buggySquare)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Invoke(uint64(i)%997 + 1000)
	}
}
