// Package nvp implements N-Version Programming, the design-diversity
// scheme the paper's §3.3 footnote requires: "Obviously simple
// replication would not suffice to tolerate design faults, in which case
// a design diversity scheme such as N-Version Programming would be
// required" (citing Avižienis 1985).
//
// An Executor runs N independently designed versions of a computation
// and adjudicates their outputs by strict majority. Unlike the voting
// farm of package voting — which replicates *one* method and masks
// physical faults — NVP masks *design* faults, provided the versions'
// bugs are independent and a majority of versions is correct on each
// input.
package nvp

import (
	"errors"
	"fmt"
)

// Version is one independently designed implementation of the
// computation. It returns an error when it cannot produce an output
// (crash-style design fault); wrong-output design faults simply return
// a wrong value.
type Version func(input uint64) (uint64, error)

// ErrNoMajority reports an adjudication failure: no output value was
// produced by a strict majority of versions.
var ErrNoMajority = errors.New("nvp: no majority among version outputs")

// Result reports one NVP invocation.
type Result struct {
	// Value is the adjudicated output when OK.
	Value uint64
	// OK reports whether a strict majority agreed.
	OK bool
	// Agreement is the number of versions backing Value.
	Agreement int
	// Crashed is the number of versions that returned an error.
	Crashed int
	// DTOF is the distance-to-failure of the adjudication, in the
	// paper's §3.3 sense: ceil(n/2) − dissenters, 0 without a majority.
	DTOF int
}

// Executor runs a fixed set of diverse versions.
type Executor struct {
	versions []Version

	invocations int64
	failures    int64
}

// New builds an executor. At least three versions are required for the
// scheme to mask any single faulty version, and the count must be odd
// so that strict majority is well-defined under full participation.
func New(versions ...Version) (*Executor, error) {
	if len(versions) < 3 {
		return nil, fmt.Errorf("nvp: need at least 3 versions, got %d", len(versions))
	}
	if len(versions)%2 == 0 {
		return nil, fmt.Errorf("nvp: need an odd number of versions, got %d", len(versions))
	}
	for i, v := range versions {
		if v == nil {
			return nil, fmt.Errorf("nvp: version %d is nil", i)
		}
	}
	vs := make([]Version, len(versions))
	copy(vs, versions)
	return &Executor{versions: vs}, nil
}

// N reports the number of versions.
func (e *Executor) N() int { return len(e.versions) }

// Invoke runs every version on the input and adjudicates.
func (e *Executor) Invoke(input uint64) Result {
	e.invocations++
	counts := make(map[uint64]int, 2)
	res := Result{}
	for _, v := range e.versions {
		out, err := v(input)
		if err != nil {
			res.Crashed++
			continue
		}
		counts[out]++
	}
	bestVal, bestCount := uint64(0), 0
	for v, c := range counts {
		if c > bestCount {
			bestVal, bestCount = v, c
		}
	}
	n := len(e.versions)
	if bestCount > n/2 {
		res.OK = true
		res.Value = bestVal
		res.Agreement = bestCount
		res.DTOF = (n+1)/2 - (n - bestCount)
		if res.DTOF < 0 {
			res.DTOF = 0
		}
	}
	if !res.OK {
		e.failures++
	}
	return res
}

// InvokeErr is Invoke with an error return for callers that prefer the
// idiomatic signature.
func (e *Executor) InvokeErr(input uint64) (uint64, error) {
	res := e.Invoke(input)
	if !res.OK {
		return 0, fmt.Errorf("%w (crashed %d of %d)", ErrNoMajority, res.Crashed, e.N())
	}
	return res.Value, nil
}

// Stats reports the cumulative invocation and adjudication-failure
// counts.
func (e *Executor) Stats() (invocations, failures int64) {
	return e.invocations, e.failures
}

// Replicate builds an "NVP" executor from n copies of a single version:
// the degenerate scheme the paper's footnote warns about. It exists so
// tests and benchmarks can demonstrate *why* diversity is required —
// replicated design faults vote together.
func Replicate(n int, v Version) (*Executor, error) {
	vs := make([]Version, n)
	for i := range vs {
		vs[i] = v
	}
	return New(vs...)
}
