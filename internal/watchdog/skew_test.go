package watchdog

import (
	"testing"

	"aft/internal/simclock"
)

// TestSkewFiresOnHealthyTask: a clock-skewed watchdog reads the
// silence as longer than it is — a task beating well inside the
// deadline still gets shot once the skew pushes the apparent silence
// past it. This is the chaos harness's "skew" fault model.
func TestSkewFiresOnHealthyTask(t *testing.T) {
	s := simclock.New()
	var fires []simclock.Time
	w, err := New(Config{Interval: 10, Deadline: 15},
		func(now simclock.Time) { fires = append(fires, now) })
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	s.Every(10, func(sc *simclock.Scheduler) bool {
		w.Beat(sc.Now())
		return sc.Now() < 200
	})
	// Skew the watchdog clock 20 ahead from t=50: at the t=50 check the
	// last beat is at 50 but beats race checks at equal times, so the
	// worst apparent silence is 20 + (check - lastBeat) = 20..30 > 15.
	s.At(45, func(*simclock.Scheduler) { w.SetSkew(20) })
	s.At(95, func(*simclock.Scheduler) { w.SetSkew(0) })
	s.Run(200)
	if len(fires) == 0 {
		t.Fatal("skewed watchdog never fired on a healthy task")
	}
	for _, at := range fires {
		if at < 50 || at > 100 {
			t.Fatalf("fired at %d, outside the skewed window [50,100]: %v", at, fires)
		}
	}
}

// TestSkewWithinToleranceIsHarmless: skew smaller than the deadline
// slack never fires — the boundary is deadline-exclusive, matching the
// unskewed check.
func TestSkewWithinToleranceIsHarmless(t *testing.T) {
	s := simclock.New()
	w, err := New(Config{Interval: 10, Deadline: 25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	s.Every(10, func(sc *simclock.Scheduler) bool {
		w.Beat(sc.Now())
		return sc.Now() < 200
	})
	// Apparent silence at a check is at most skew + interval = 25, not
	// strictly greater than the deadline: never fires.
	w.SetSkew(15)
	s.Run(200)
	if w.Fires() != 0 {
		t.Fatalf("tolerated skew fired %d times", w.Fires())
	}
}

// TestSkewSurvivesStateRoundTrip: skew is part of the exported state,
// so a checkpointed run resumes with the same effective clocks.
func TestSkewSurvivesStateRoundTrip(t *testing.T) {
	a, err := New(Config{Interval: 10, Deadline: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSkew(7)
	a.Beat(42)
	st := a.ExportState()
	if st.Skew != 7 {
		t.Fatalf("exported skew %d, want 7", st.Skew)
	}
	b, err := New(Config{Interval: 10, Deadline: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if b.Skew() != 7 || b.LastBeat() != 42 {
		t.Fatalf("restored skew=%d lastBeat=%d", b.Skew(), b.LastBeat())
	}
}
