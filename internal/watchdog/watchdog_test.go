package watchdog

import (
	"testing"

	"aft/internal/simclock"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Interval: 0, Deadline: 5}, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := New(Config{Interval: 5, Deadline: 0}, nil); err == nil {
		t.Fatal("zero deadline accepted")
	}
}

func TestHealthyTaskNeverFires(t *testing.T) {
	s := simclock.New()
	w, err := New(Config{Interval: 10, Deadline: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	// Task beats every 10 units.
	s.Every(10, func(sc *simclock.Scheduler) bool {
		w.Beat(sc.Now())
		return sc.Now() < 1000
	})
	s.Run(1000)
	if w.Fires() != 0 {
		t.Fatalf("watchdog fired %d times on a healthy task", w.Fires())
	}
	if w.Beats() == 0 {
		t.Fatal("no beats recorded")
	}
}

func TestSilentTaskFiresRepeatedly(t *testing.T) {
	s := simclock.New()
	var fireTimes []simclock.Time
	w, err := New(Config{Interval: 10, Deadline: 15},
		func(now simclock.Time) { fireTimes = append(fireTimes, now) })
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	// Stop everything at t=100 by stopping the watchdog. The stop event
	// was scheduled before the check chain's t=100 event, so it wins the
	// same-time FIFO race and the t=100 check never fires.
	s.At(100, func(*simclock.Scheduler) { w.Stop() })
	s.Run(200)
	// Checks at 10 (silence 10 <= 15, ok), then 20..90 all fire: 8
	// firings.
	if len(fireTimes) != 8 {
		t.Fatalf("fired %d times at %v, want 8", len(fireTimes), fireTimes)
	}
	if fireTimes[0] != 20 {
		t.Fatalf("first firing at %d, want 20", fireTimes[0])
	}
}

func TestRecoveryStopsFiring(t *testing.T) {
	s := simclock.New()
	w, err := New(Config{Interval: 10, Deadline: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	// Silent until t=50, then beats resume.
	s.Every(10, func(sc *simclock.Scheduler) bool {
		if sc.Now() >= 50 {
			w.Beat(sc.Now())
		}
		return sc.Now() < 300
	})
	s.Run(250)
	// The watchdog check chain was scheduled before the beat chain, so
	// at every shared tick the check runs first. Fires at 20, 30, 40 and
	// 50 (the t=50 check still sees silence); afterwards silence never
	// exceeds the deadline again.
	if fires := w.Fires(); fires != 4 {
		t.Fatalf("fired %d times, want 4 (only during the silent window)", fires)
	}
}

func TestBeatMonotonic(t *testing.T) {
	w, err := New(Config{Interval: 1, Deadline: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Beat(10)
	w.Beat(5) // out-of-order heartbeat must not move time backwards
	if w.LastBeat() != 10 {
		t.Fatalf("LastBeat = %d, want 10", w.LastBeat())
	}
}

func TestDoubleStartIsIdempotent(t *testing.T) {
	s := simclock.New()
	w, err := New(Config{Interval: 10, Deadline: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	w.Start(s)
	s.At(55, func(*simclock.Scheduler) { w.Stop() })
	s.Run(100)
	// Single check chain: checks at 10..50 all fire (silence from 0).
	if w.Fires() != 5 {
		t.Fatalf("fires = %d, want 5 (double Start must not double the checks)", w.Fires())
	}
}

// TestRestartAfterStop covers stop→start→fire: the seed silently ignored
// the second Start (started stayed true, stopped stayed set), so a
// stopped watchdog could never watch again.
func TestRestartAfterStop(t *testing.T) {
	s := simclock.New()
	w, err := New(Config{Interval: 10, Deadline: 15}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	s.At(35, func(*simclock.Scheduler) { w.Stop() })
	s.Run(100)
	// Checks at 10 (silence 10 <= 15), 20, 30 fire; the t=40 check sees
	// the stop and unschedules.
	if w.Fires() != 2 {
		t.Fatalf("fires before restart = %d, want 2", w.Fires())
	}

	// Restart: the deadline window must reset to the restart instant, so
	// the old silence is forgiven and checks resume.
	w.Start(s)
	now := s.Now()
	s.Run(now + 65)
	// Relative to the restart at now: checks at +10 (ok), +20..+60 fire.
	if got := w.Fires() - 2; got != 5 {
		t.Fatalf("fires after restart = %d, want 5", got)
	}
}

// TestRestartDoesNotDuplicateChecks guards the restart against a
// leftover chain: a stop immediately followed by a start must retire the
// old chain's queued events instead of running two chains.
func TestRestartDoesNotDuplicateChecks(t *testing.T) {
	s := simclock.New()
	w, err := New(Config{Interval: 10, Deadline: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s) // chain A: checks at 10, 20, 30, ...
	s.At(15, func(sc *simclock.Scheduler) {
		w.Stop()
		w.Start(sc) // chain B: checks at 25, 35, 45, ...
	})
	s.Run(50)
	// Chain A fires at 10 (silence 10 > 5); its t=20 event must die on
	// the generation check. Chain B fires at 25, 35, 45 (silence measured
	// from the restart at 15). Total: 4.
	if w.Fires() != 4 {
		t.Fatalf("fires = %d, want 4 (old chain must not keep ticking)", w.Fires())
	}
}

func TestStopHaltsChecks(t *testing.T) {
	s := simclock.New()
	w, err := New(Config{Interval: 10, Deadline: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Start(s)
	s.At(25, func(*simclock.Scheduler) { w.Stop() })
	s.RunAll() // must terminate: the Every loop exits after Stop
	if w.Fires() != 2 {
		t.Fatalf("fires = %d, want 2 (t=10 and t=20)", w.Fires())
	}
}
