// Package watchdog implements the heartbeat watchdog of the paper's
// Fig. 4 scenario: a watchdog task observes a watched task; when the
// watched task stays silent past its deadline the watchdog "fires", and
// each firing feeds the alpha-count oracle that discriminates transient
// from permanent faults.
//
// The watchdog runs in virtual time on a simclock.Scheduler so that the
// Fig. 4 experiment is deterministic.
package watchdog

import (
	"fmt"

	"aft/internal/simclock"
)

// Config parameterizes a watchdog.
type Config struct {
	// Interval is the period between watchdog checks.
	Interval simclock.Time
	// Deadline is the maximum silence tolerated since the last
	// heartbeat; longer silences fire the watchdog.
	Deadline simclock.Time
}

// Watchdog monitors heartbeats in virtual time. It keeps firing once per
// check interval for as long as the watched task stays silent, matching
// the repeated firings of Fig. 4.
type Watchdog struct {
	cfg      Config
	onFire   func(now simclock.Time)
	lastBeat simclock.Time
	started  bool
	stopped  bool
	// gen identifies the live check chain. Each Start increments it;
	// a chain whose generation no longer matches unschedules itself, so
	// a stop→start cycle can never leave two chains ticking.
	gen   uint64
	fires int64
	beats int64
	// skew is the watchdog's local-clock offset: a positive skew means
	// the watchdog's clock runs ahead of the heartbeat timeline, so a
	// perfectly live task looks older than it is and a skew past the
	// deadline fires the watchdog spuriously. See SetSkew.
	skew simclock.Time
}

// New builds a watchdog. onFire runs on every firing; it may be nil.
func New(cfg Config, onFire func(now simclock.Time)) (*Watchdog, error) {
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("watchdog: interval must be positive, got %d", cfg.Interval)
	}
	if cfg.Deadline <= 0 {
		return nil, fmt.Errorf("watchdog: deadline must be positive, got %d", cfg.Deadline)
	}
	return &Watchdog{cfg: cfg, onFire: onFire}, nil
}

// Start schedules the periodic checks. The last-heartbeat time starts at
// the current virtual time, so a healthy task has a full deadline before
// the first possible firing.
//
// Starting a running watchdog is a no-op; starting a stopped one
// restarts it with a fresh deadline window, retiring any check events of
// the previous chain that are still in the scheduler's queue.
func (w *Watchdog) Start(s *simclock.Scheduler) {
	if w.started && !w.stopped {
		return
	}
	w.started = true
	w.stopped = false
	w.gen++
	gen := w.gen
	w.lastBeat = s.Now()
	s.Every(w.cfg.Interval, func(sc *simclock.Scheduler) bool {
		if w.stopped || w.gen != gen {
			return false
		}
		w.check(sc.Now())
		return true
	})
}

// check fires if the watched task has been silent past the deadline,
// as judged by the watchdog's own (possibly skewed) clock.
func (w *Watchdog) check(now simclock.Time) {
	if now+w.skew-w.lastBeat <= w.cfg.Deadline {
		return
	}
	w.fires++
	if w.onFire != nil {
		w.onFire(now)
	}
}

// SetSkew offsets the watchdog's local clock by d virtual time units:
// every subsequent check judges silence as if the current time were
// now+d. It models the clock-skew fault of distributed heartbeating —
// a watchdog whose clock drifts ahead of the watched task's sees
// heartbeats age prematurely and, once the skew exceeds the deadline
// slack, fires on a perfectly healthy task. Negative skews (a lagging
// watchdog clock, tolerating longer silences) are accepted too. Skew
// can be changed at any time; it takes effect at the next check.
func (w *Watchdog) SetSkew(d simclock.Time) { w.skew = d }

// Skew reports the watchdog's current local-clock offset.
func (w *Watchdog) Skew() simclock.Time { return w.skew }

// Beat records a heartbeat from the watched task at the given virtual
// time.
func (w *Watchdog) Beat(now simclock.Time) {
	w.beats++
	if now > w.lastBeat {
		w.lastBeat = now
	}
}

// Stop cancels future checks (takes effect at the next scheduled check).
// A stopped watchdog can be restarted with Start.
func (w *Watchdog) Stop() { w.stopped = true }

// State is the serializable state of a Watchdog, for checkpointing (see
// internal/checkpoint). The check chain itself is not state — a resumed
// run reschedules it with ResumeAt.
type State struct {
	// LastBeat is the virtual time of the most recent heartbeat.
	LastBeat simclock.Time
	// Beats and Fires are the cumulative counters.
	Beats, Fires int64
	// Skew is the local-clock offset in force at snapshot time (see
	// SetSkew). Zero for snapshots written before skew existed, which
	// restores the historical behaviour.
	Skew simclock.Time
}

// ExportState captures the watchdog's counters, heartbeat watermark,
// and clock skew.
func (w *Watchdog) ExportState() State {
	return State{LastBeat: w.lastBeat, Beats: w.beats, Fires: w.fires, Skew: w.skew}
}

// RestoreState rewinds the watchdog to a previously exported state. Call
// it before ResumeAt, which does not reset the heartbeat watermark.
func (w *Watchdog) RestoreState(st State) error {
	if st.Beats < 0 || st.Fires < 0 {
		return fmt.Errorf("watchdog: negative restored counters")
	}
	w.lastBeat = st.LastBeat
	w.beats = st.Beats
	w.fires = st.Fires
	w.skew = st.Skew
	return nil
}

// ResumeAt restarts the periodic checks of a restored watchdog with the
// first check at the absolute virtual time firstCheck, then every
// Interval. Unlike Start it preserves the last-heartbeat watermark, so
// a silence that began before the checkpoint still fires on schedule —
// the property that keeps resumed chaos transcripts byte-identical.
// Like Start, it retires any check chain from a previous generation.
func (w *Watchdog) ResumeAt(s *simclock.Scheduler, firstCheck simclock.Time) {
	w.started = true
	w.stopped = false
	w.gen++
	gen := w.gen
	var tick simclock.Event
	tick = func(sc *simclock.Scheduler) {
		if w.stopped || w.gen != gen {
			return
		}
		w.check(sc.Now())
		sc.After(w.cfg.Interval, tick)
	}
	s.At(firstCheck, tick)
}

// Fires reports how many times the watchdog has fired.
func (w *Watchdog) Fires() int64 { return w.fires }

// Beats reports how many heartbeats were received.
func (w *Watchdog) Beats() int64 { return w.beats }

// LastBeat reports the virtual time of the most recent heartbeat.
func (w *Watchdog) LastBeat() simclock.Time { return w.lastBeat }
