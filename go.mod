module aft

go 1.24
