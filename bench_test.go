package aft

// One benchmark per paper artefact, each regenerating its figure through
// the same harness cmd/aft-bench uses, plus microbenchmarks for the hot
// paths underneath them. Shape assertions live in
// internal/experiments/experiments_test.go; these benchmarks measure the
// cost of regeneration and report the headline metric of each experiment
// for eyeballing in bench output.

import (
	"fmt"
	"testing"

	"aft/internal/experiments"
	"aft/internal/pubsub"
	"aft/internal/redundancy"
	"aft/internal/simclock"
	"aft/internal/voting"
	"aft/internal/xrand"
)

// BenchmarkFig4AlphaCount regenerates the watchdog + alpha-count
// scenario of Fig. 4.
func BenchmarkFig4AlphaCount(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(experiments.DefaultFig4Config())
		if err != nil {
			b.Fatal(err)
		}
		if res.FlipIndex != 3 {
			b.Fatalf("flip at %d", res.FlipIndex)
		}
	}
}

// BenchmarkFig5DTOF regenerates the distance-to-failure table of Fig. 5.
func BenchmarkFig5DTOF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig5(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].DTOF != 4 {
			b.Fatal("dtof table wrong")
		}
	}
}

// BenchmarkFig6Staircase regenerates the redundancy staircase of Fig. 6
// (12k rounds with one ramping storm).
func BenchmarkFig6Staircase(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAdaptive(experiments.DefaultFig6Config())
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 {
			b.Fatalf("failures %d", res.Failures)
		}
	}
}

// BenchmarkFig7Histogram regenerates the redundancy occupancy histogram
// of Fig. 7 at a 1M-round scale (the paper ran 65M; cmd/aft-bench
// -fig 7 -steps 65000000 reproduces it in full).
func BenchmarkFig7Histogram(b *testing.B) {
	cfg := experiments.DefaultFig7Config(1_000_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAdaptive(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 {
			b.Fatalf("failures %d", res.Failures)
		}
		b.ReportMetric(res.MinFraction*100, "%time@r=3")
	}
}

// BenchmarkE5PermanentFault regenerates the livelock ablation.
func BenchmarkE5PermanentFault(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE5(experiments.DefaultE5Config())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("rows missing")
		}
	}
}

// BenchmarkE6TransientFaults regenerates the spare-waste ablation.
func BenchmarkE6TransientFaults(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE6(experiments.DefaultE6Config())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("rows missing")
		}
	}
}

// BenchmarkE7SelectionMatrix regenerates the §3.1 selection/survival
// matrix.
func BenchmarkE7SelectionMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RunE7(experiments.DefaultE7Config())
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 25 {
			b.Fatal("matrix incomplete")
		}
	}
}

// BenchmarkE8Dimensioning regenerates the fixed-versus-autonomic
// dimensioning comparison.
func BenchmarkE8Dimensioning(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE8(60_000, 42)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatal("rows missing")
		}
	}
}

// BenchmarkE9AlphaSweep regenerates the alpha-count parameter sweep.
func BenchmarkE9AlphaSweep(b *testing.B) {
	cfg := experiments.DefaultE9Config()
	cfg.Traces = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 16 {
			b.Fatal("grid incomplete")
		}
	}
}

// BenchmarkE10HysteresisSweep regenerates the LowerAfter sweep.
func BenchmarkE10HysteresisSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE10(60_000, 42, []int{10, 1000, 10000})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("rows missing")
		}
	}
}

// --- microbenchmarks on the hot paths ----------------------------------

// BenchmarkAdaptiveRound measures one round of the fused §3.3 campaign
// engine — storm draw, first-K corruption, vote, controller observation
// — the operation the 65-million-round Fig. 7 campaign repeats. The
// consensus path must report 0 allocs/op (also asserted by
// TestCampaignStepZeroAlloc); compare with
// BenchmarkAdaptiveRoundReference for the seed path.
func BenchmarkAdaptiveRound(b *testing.B) {
	eng, err := experiments.NewCampaign(experiments.DefaultFig7Config(1_000_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}

// benchSwitchboard builds the 3-replica switchboard both consensus-step
// benchmarks share.
func benchSwitchboard(b *testing.B) *redundancy.Switchboard {
	b.Helper()
	farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		b.Fatal(err)
	}
	sb, err := redundancy.NewSwitchboard(farm, redundancy.DefaultPolicy(), []byte("bench-key"))
	if err != nil {
		b.Fatal(err)
	}
	return sb
}

// BenchmarkConsensusStep measures the engine's consensus step through
// the switchboard (reusable ballot buffer, map-free tally): the exact
// work BenchmarkConsensusStepReference does on the seed path, minus the
// garbage. Must report 0 allocs/op.
func BenchmarkConsensusStep(b *testing.B) {
	sb := benchSwitchboard(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.StepFirstK(uint64(i), 0, nil)
	}
}

// BenchmarkConsensusStepReference measures the seed per-round path on
// the same consensus round: a fresh ballot slice every round through
// Switchboard.Step.
func BenchmarkConsensusStepReference(b *testing.B) {
	sb := benchSwitchboard(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.Step(uint64(i), nil, nil)
	}
}

// BenchmarkFig7HistogramReference regenerates the 1M-round Fig. 7
// campaign on the retained pre-engine loop, so `go test -bench Fig7`
// shows the engine gain end to end.
func BenchmarkFig7HistogramReference(b *testing.B) {
	cfg := experiments.DefaultFig7Config(1_000_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAdaptiveReference(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures != 0 {
			b.Fatalf("failures %d", res.Failures)
		}
	}
}

// BenchmarkVotingRoundConsensus measures one clean voting round, the
// dominant operation of the Fig. 7 run.
func BenchmarkVotingRoundConsensus(b *testing.B) {
	farm, err := voting.NewFarm(3, func(v uint64) uint64 { return v })
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := farm.Round(uint64(i), nil, nil)
		if o.Failed() {
			b.Fatal("clean round failed")
		}
	}
}

// BenchmarkVotingRoundDissent measures a round with one corrupted
// replica (map-tally path).
func BenchmarkVotingRoundDissent(b *testing.B) {
	farm, err := voting.NewFarm(7, func(v uint64) uint64 { return v })
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	corrupted := func(i int) bool { return i == 0 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		farm.Round(uint64(i), corrupted, rng)
	}
}

// BenchmarkExecutiveVerify measures one verification sweep over a
// 100-variable registry.
func BenchmarkExecutiveVerify(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 100; i++ {
		name := "var" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		v := Variable{
			Name:         name,
			Doc:          "bench variable",
			Syndrome:     Horning,
			BindAt:       RunTime,
			Alternatives: []Alternative{{ID: "x"}, {ID: "y"}},
		}
		if err := reg.Declare(v); err != nil {
			b.Fatal(err)
		}
		if err := reg.Bind(name, "x", RunTime); err != nil {
			b.Fatal(err)
		}
		if err := reg.AttachTruth(name, func() (string, error) { return "x", nil }); err != nil {
			b.Fatal(err)
		}
	}
	exec, err := NewExecutive(reg, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		exec.VerifyOnce(int64(i))
	}
}

// BenchmarkBusPublish measures one fault notification through the
// pub/sub bus with 8 subscribers.
func BenchmarkBusPublish(b *testing.B) {
	bus := pubsub.New()
	for i := 0; i < 8; i++ {
		bus.Subscribe("faults/*", func(pubsub.Message) {})
	}
	msg := pubsub.Message{Topic: "faults/c3", Payload: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Publish(msg)
	}
}

// BenchmarkBusPublishParallel measures concurrent publishing against a
// bus carrying 1000 subscriptions on distinct topics — the §3.2
// notification hot path under contention. Run with GOMAXPROCS=8 to
// reproduce the acceptance point: the seed's single-mutex bus scanned
// every subscription per publish (~16µs/op); the sharded topic index
// touches only matching ones (~0.1µs/op).
func BenchmarkBusPublishParallel(b *testing.B) {
	bus := pubsub.New()
	for i := 0; i < 1000; i++ {
		bus.Subscribe(fmt.Sprintf("faults/c%d", i), func(pubsub.Message) {})
	}
	msg := pubsub.Message{Topic: "faults/c42", Payload: true}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bus.Publish(msg)
		}
	})
}

// BenchmarkBusPublishAsync measures the bounded-queue async delivery
// mode under the same 1000-subscription load. Publishers can outpace
// the single matching worker and hit the drop path; the drops/op metric
// reports how much of the run priced backpressure rather than enqueue.
func BenchmarkBusPublishAsync(b *testing.B) {
	bus := pubsub.New().Async(1024)
	for i := 0; i < 1000; i++ {
		bus.Subscribe(fmt.Sprintf("faults/c%d", i), func(pubsub.Message) {})
	}
	msg := pubsub.Message{Topic: "faults/c42", Payload: true}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			bus.Publish(msg)
		}
	})
	b.StopTimer()
	bus.Close()
	b.ReportMetric(float64(bus.Metrics().Dropped.Value())/float64(b.N), "drops/op")
}

// BenchmarkSweepSerial and BenchmarkSweepParallel regenerate the E9
// alpha-count grid serially and on the worker pool; the rows are
// byte-identical, so the pair isolates the runtime's scheduling cost
// (and, on multi-core hosts, its speedup).
func BenchmarkSweepSerial(b *testing.B) {
	cfg := experiments.DefaultE9Config()
	cfg.Traces = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 16 {
			b.Fatal("grid incomplete")
		}
	}
}

func BenchmarkSweepParallel(b *testing.B) {
	cfg := experiments.DefaultE9Config()
	cfg.Traces = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunE9Parallel(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 16 {
			b.Fatal("grid incomplete")
		}
	}
}

// BenchmarkBatchStep measures one lockstep round of the batch campaign
// engine at several widths, reporting ns/lane-round — directly
// comparable with BenchmarkAdaptiveRound's ns/op (one scalar fused
// round). The wider variants amortize the per-round loop overhead and
// keep each lane's SoA state hot; all widths must report 0 allocs/op
// (also gated by TestBatchStepZeroAlloc).
func BenchmarkBatchStep(b *testing.B) {
	for _, width := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("w%d", width), func(b *testing.B) {
			cfg := experiments.DefaultFig7Config(int64(b.N) + 1_000_000)
			bc, err := experiments.NewBatchCampaign(cfg, xrand.Seeds(1906, width))
			if err != nil {
				b.Fatal(err)
			}
			bc.Run(1000) // steady state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bc.Step()
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			b.ReportMetric(float64(elapsed.Nanoseconds())/float64(b.N)/float64(width), "ns/lane-round")
		})
	}
}

// BenchmarkBatchParallel measures RunBatchParallel end to end — 32
// Fig. 7-style lanes of 100k rounds sharded across the pool — at
// several worker counts, reporting aggregate lane-rounds per second.
// On a multi-core host the rounds/sec metric scales with cores on top
// of the batch engine's single-core gain (cmd/aft-bench -fig benchbatch
// records the full cores × width grid in BENCH_trajectory.json).
func BenchmarkBatchParallel(b *testing.B) {
	const lanes, steps = 32, 100_000
	cfg := experiments.DefaultFig7Config(steps)
	seeds := xrand.Seeds(1906, lanes)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunBatchParallel(cfg, seeds, 0, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			roundsSec := float64(lanes*steps) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(roundsSec, "rounds/sec")
		})
	}
}

// BenchmarkSchedulerThroughput measures discrete-event scheduling, the
// substrate under the Fig. 4 scenario.
func BenchmarkSchedulerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := simclock.New()
		n := 0
		s.Every(1, func(*simclock.Scheduler) bool {
			n++
			return n < 1000
		})
		s.RunAll()
	}
}
