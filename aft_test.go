package aft

import (
	"errors"
	"testing"

	"aft/internal/pubsub"
	"aft/internal/simclock"
)

// TestFacadeEndToEnd drives the whole public surface: declare a
// postponed assumption, bind it late, watch the executive detect an
// Ariane-5-style clash, and auto-rebind.
func TestFacadeEndToEnd(t *testing.T) {
	reg := NewRegistry()
	err := reg.Declare(Variable{
		Name:     "flight.horizontal-velocity-range",
		Doc:      "horizontal velocity fits a 16-bit signed integer (Ariane 4 heritage)",
		Syndrome: Horning,
		BindAt:   DeployTime,
		Alternatives: []Alternative{
			{ID: "int16", Description: "fits 16-bit signed"},
			{ID: "int64", Description: "needs 64-bit"},
		},
		AutoRebind: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Bind("flight.horizontal-velocity-range", "int16", DesignTime); !errors.Is(err, ErrTooEarly) {
		t.Fatalf("premature bind: %v", err)
	}
	if err := reg.Bind("flight.horizontal-velocity-range", "int16", DeployTime); err != nil {
		t.Fatal(err)
	}

	truth := "int16"
	if err := reg.AttachTruth("flight.horizontal-velocity-range",
		func() (string, error) { return truth, nil }); err != nil {
		t.Fatal(err)
	}

	bus := pubsub.New()
	var clashes []Clash
	bus.Subscribe(ClashTopic("flight.horizontal-velocity-range"), func(m pubsub.Message) {
		if c, ok := m.Payload.(Clash); ok {
			clashes = append(clashes, c)
		}
	})

	exec, err := NewExecutive(reg, bus, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := simclock.New()
	exec.Start(s)
	// The new launcher is faster: the fact changes at t=25.
	s.At(25, func(*simclock.Scheduler) { truth = "int64" })
	s.At(100, func(*simclock.Scheduler) { exec.Stop() })
	s.Run(150)

	if len(clashes) != 1 {
		t.Fatalf("clashes = %v, want exactly 1 (auto-rebind heals)", clashes)
	}
	if !clashes[0].Rebound || clashes[0].Syndrome != Horning {
		t.Fatalf("clash = %+v", clashes[0])
	}
	v, err := reg.Get("flight.horizontal-velocity-range")
	if err != nil {
		t.Fatal(err)
	}
	if bound, _ := v.Bound(); bound != "int64" {
		t.Fatalf("bound = %q after rebind", bound)
	}
}

func TestFacadeBoulding(t *testing.T) {
	fixed := Classify(Traits{Dynamic: true, MaintainsSetpoint: true})
	if fixed != Thermostat {
		t.Fatalf("fixed redundancy = %v, want Thermostat", fixed)
	}
	autonomic := Classify(Traits{Dynamic: true, MaintainsSetpoint: true, RevisesStructure: true})
	if autonomic != Cell {
		t.Fatalf("autonomic redundancy = %v, want Cell", autonomic)
	}
	if !BouldingClash(fixed, Cell) {
		t.Fatal("Thermostat in a Cell-demanding environment must clash")
	}
}

func TestFacadeAudit(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Declare(Variable{
		Name:         "x",
		Doc:          "d",
		Syndrome:     HiddenIntelligence,
		BindAt:       RunTime,
		Alternatives: []Alternative{{ID: "a"}},
	}); err != nil {
		t.Fatal(err)
	}
	findings := reg.Audit()
	if len(findings) != 2 {
		t.Fatalf("audit findings = %v", findings)
	}
}
