package aft_test

import (
	"fmt"

	"aft"
)

// ExampleRegistry shows the complete life of an assumption variable:
// declaration with provenance, late binding, truth attachment, and
// clash detection.
func ExampleRegistry() {
	reg := aft.NewRegistry()
	_ = reg.Declare(aft.Variable{
		Name:     "net.latency-class",
		Doc:      "the deployment network is LAN-class (<1ms RTT); assumed by the retry budget",
		Syndrome: aft.Horning,
		BindAt:   aft.DeployTime,
		Alternatives: []aft.Alternative{
			{ID: "lan", Description: "sub-millisecond"},
			{ID: "wan", Description: "tens of milliseconds"},
		},
	})
	_ = reg.Bind("net.latency-class", "lan", aft.DeployTime)
	_ = reg.AttachTruth("net.latency-class", func() (string, error) {
		return "wan", nil // the probe says otherwise
	})
	for _, clash := range reg.Verify(7) {
		fmt.Println(clash)
	}
	// Output:
	// [7] Horning clash on "net.latency-class": assumed "lan", observed "wan"
}

// ExampleClassify grades two designs of the same service on Boulding's
// scale — the paper's §3.3 contrast.
func ExampleClassify() {
	fixed := aft.Classify(aft.Traits{Dynamic: true, MaintainsSetpoint: true})
	autonomic := aft.Classify(aft.Traits{
		Dynamic: true, MaintainsSetpoint: true, RevisesStructure: true,
	})
	fmt.Println(fixed, "->", autonomic)
	fmt.Println("clash against a Cell environment:",
		aft.BouldingClash(fixed, aft.Cell), "->", aft.BouldingClash(autonomic, aft.Cell))
	// Output:
	// Thermostat -> Cell
	// clash against a Cell environment: true -> false
}

// ExampleRegistry_audit shows the hygiene audit that catches the Hidden
// Intelligence syndrome before deployment.
func ExampleRegistry_audit() {
	reg := aft.NewRegistry()
	_ = reg.Declare(aft.Variable{
		Name:         "disk.iops-class",
		Doc:          "storage is SSD-class; assumed by the compaction scheduler",
		Syndrome:     aft.HiddenIntelligence,
		BindAt:       aft.DeployTime,
		Alternatives: []aft.Alternative{{ID: "ssd"}, {ID: "hdd"}},
	})
	for _, f := range reg.Audit() {
		fmt.Printf("%s: %s\n", f.Variable, f.Problem)
	}
	// Output:
	// disk.iops-class: declared but never bound
	// disk.iops-class: no truth source attached: the assumption is unverifiable at run time
}
