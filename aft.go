// Package aft is the public façade of the assumption-failure-tolerance
// library, a reproduction of Vincenzo De Florio, "Software Assumptions
// Failure Tolerance: Role, Strategies, and Visions".
//
// The library's thesis, following the paper, is that design assumptions
// should be explicit, documented, postponed, verified, and — where
// possible — autonomically revised. The façade exposes the assumption
// framework (declare → bind late → verify against truth sources →
// detect/handle clashes) plus the Boulding-scale classification used to
// grade a system's openness.
//
// The three treatment strategies of the paper's §3 are implemented by
// the internal packages and exercised by the examples and experiment
// harnesses:
//
//   - §3.1 compile/deploy-time selection of memory access methods
//     (internal/autoconf over internal/spd, internal/memaccess,
//     internal/memsim, internal/ecc);
//   - §3.2 run-time choice of fault-tolerance design patterns
//     (internal/accada over internal/alphacount, internal/dag,
//     internal/ftpatterns, internal/pubsub, internal/watchdog);
//   - §3.3 autonomic dimensioning of replicated resources
//     (internal/redundancy over internal/voting).
//
// See examples/ for runnable walkthroughs and DESIGN.md for the system
// inventory.
package aft

import (
	"aft/internal/core"
	"aft/internal/pubsub"
	"aft/internal/simclock"
	"aft/internal/trace"
)

// Re-exported core types: the assumption framework.
type (
	// Syndrome is one of the paper's three hazards (Horning, Hidden
	// Intelligence, Boulding).
	Syndrome = core.Syndrome
	// BindTime is a life-cycle stage at which an assumption may be
	// bound.
	BindTime = core.BindTime
	// Alternative is one declared hypothesis of an assumption variable.
	Alternative = core.Alternative
	// Variable is an assumption variable with postponed binding.
	Variable = core.Variable
	// TruthSource reports the hypothesis currently matching reality.
	TruthSource = core.TruthSource
	// Clash is an assumption failure: bound hypothesis versus observed
	// fact.
	Clash = core.Clash
	// Registry holds a system's declared assumption variables.
	Registry = core.Registry
	// AuditFinding is a hygiene gap reported by Registry.Audit.
	AuditFinding = core.AuditFinding
	// Executive re-verifies a registry periodically and propagates
	// clashes.
	Executive = core.Executive
	// BouldingCategory is a rung of Boulding's systems scale.
	BouldingCategory = core.BouldingCategory
	// Traits describes a system's adaptivity for classification.
	Traits = core.Traits
)

// Syndromes.
const (
	Horning            = core.Horning
	HiddenIntelligence = core.HiddenIntelligence
	Boulding           = core.Boulding
)

// Binding stages.
const (
	DesignTime  = core.DesignTime
	CompileTime = core.CompileTime
	DeployTime  = core.DeployTime
	RunTime     = core.RunTime
)

// Boulding categories.
const (
	Framework  = core.Framework
	Clockwork  = core.Clockwork
	Thermostat = core.Thermostat
	Cell       = core.Cell
	Plant      = core.Plant
	Being      = core.Being
)

// Errors re-exported for matching with errors.Is.
var (
	ErrUnknownVariable    = core.ErrUnknownVariable
	ErrUnknownAlternative = core.ErrUnknownAlternative
	ErrTooEarly           = core.ErrTooEarly
	ErrUnbound            = core.ErrUnbound
	ErrNoTruthSource      = core.ErrNoTruthSource
)

// NewRegistry returns an empty assumption registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// NewExecutive builds a run-time executive verifying reg every interval
// virtual-time ticks, publishing clashes to bus (nil disables
// propagation).
func NewExecutive(reg *Registry, bus *pubsub.Bus, interval simclock.Time, opts ...core.ExecutiveOption) (*Executive, error) {
	return core.NewExecutive(reg, bus, interval, opts...)
}

// WithExecRecorder attaches a trace recorder to an executive.
func WithExecRecorder(rec *trace.Recorder) core.ExecutiveOption {
	return core.WithExecRecorder(rec)
}

// Classify grades a system's traits on Boulding's scale.
func Classify(t Traits) BouldingCategory { return core.Classify(t) }

// BouldingClash reports whether a system's category falls short of what
// its environment requires — the Boulding syndrome condition.
func BouldingClash(system, required BouldingCategory) bool {
	return core.BouldingClash(system, required)
}

// ClashTopic is the bus topic on which an executive publishes clashes
// for a variable.
func ClashTopic(variable string) string { return core.ClashTopic(variable) }
