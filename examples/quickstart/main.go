// Command quickstart walks through the assumption framework: declare
// assumption variables with documented provenance, postpone their
// bindings, audit the registry for hygiene gaps, and let the run-time
// executive detect an Ariane-5-style assumption-versus-context clash.
package main

import (
	"fmt"
	"log"

	"aft"
	"aft/internal/pubsub"
	"aft/internal/simclock"
	"aft/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	reg := aft.NewRegistry()

	// The Ariane 4 heritage assumption that destroyed Ariane 5 flight
	// 501: horizontal velocity fits a 16-bit signed integer. Declared
	// here as an explicit, documented variable instead of being
	// hardwired into the code.
	if err := reg.Declare(aft.Variable{
		Name: "flight.horizontal-velocity-range",
		Doc: "horizontal velocity representable as int16; inherited from " +
			"the Ariane 4 flight envelope, revalidate for every new launcher",
		Syndrome: aft.Horning,
		BindAt:   aft.DeployTime,
		Alternatives: []aft.Alternative{
			{ID: "int16", Description: "|v_h| < 32768 units"},
			{ID: "int64", Description: "wide envelope"},
		},
		AutoRebind: true,
	}); err != nil {
		return err
	}

	// A §3.1-style hardware assumption.
	if err := reg.Declare(aft.Variable{
		Name:     "memory.failure-semantics",
		Doc:      "fault classes of the target memory modules; drives the access-method choice",
		Syndrome: aft.HiddenIntelligence,
		BindAt:   aft.CompileTime,
		Alternatives: []aft.Alternative{
			{ID: "f1", Description: "CMOS-like transients"},
			{ID: "f4", Description: "full single-event effects"},
		},
	}); err != nil {
		return err
	}

	fmt.Println("== Audit before binding (the registry refuses to hide intelligence)")
	for _, f := range reg.Audit() {
		fmt.Printf("  %-36s %s\n", f.Variable, f.Problem)
	}

	// Bindings happen at their declared stages, not before.
	if err := reg.Bind("flight.horizontal-velocity-range", "int16", aft.DeployTime); err != nil {
		return err
	}
	if err := reg.Bind("memory.failure-semantics", "f1", aft.CompileTime); err != nil {
		return err
	}

	// Truth sources: what "real life" reports.
	velocityTruth := "int16"
	if err := reg.AttachTruth("flight.horizontal-velocity-range",
		func() (string, error) { return velocityTruth, nil }); err != nil {
		return err
	}
	if err := reg.AttachTruth("memory.failure-semantics",
		func() (string, error) { return "f1", nil }); err != nil {
		return err
	}

	// The executive re-verifies every 10 virtual ticks and publishes
	// clashes on the bus — the paper's autonomic run-time executive.
	bus := pubsub.New()
	bus.Subscribe("assumptions/*", func(m pubsub.Message) {
		if c, ok := m.Payload.(aft.Clash); ok {
			fmt.Printf("  clash detected: %s\n", c)
		}
	})
	rec := trace.New()
	exec, err := aft.NewExecutive(reg, bus, 10, aft.WithExecRecorder(rec))
	if err != nil {
		return err
	}

	fmt.Println("\n== Run-time verification (the environment changes at t=35)")
	s := simclock.New()
	exec.Start(s)
	s.At(35, func(*simclock.Scheduler) {
		velocityTruth = "int64" // the new launcher is faster
	})
	s.At(100, func(*simclock.Scheduler) { exec.Stop() })
	s.Run(150)

	v, err := reg.Get("flight.horizontal-velocity-range")
	if err != nil {
		return err
	}
	bound, _ := v.Bound()
	fmt.Printf("\n== After the run: variable rebound to %q at %s\n", bound, v.BoundAt())

	fmt.Println("\n== Boulding classification")
	fixed := aft.Classify(aft.Traits{Dynamic: true, MaintainsSetpoint: true})
	autonomic := aft.Classify(aft.Traits{
		Dynamic: true, MaintainsSetpoint: true, RevisesStructure: true,
	})
	fmt.Printf("  static binding:     %v (a sitting duck to change)\n", fixed)
	fmt.Printf("  auto-rebinding:     %v (open, self-maintaining)\n", autonomic)
	fmt.Printf("  clash vs Cell env:  fixed=%v autonomic=%v\n",
		aft.BouldingClash(fixed, aft.Cell), aft.BouldingClash(autonomic, aft.Cell))
	return nil
}
