// Command memoryprofile demonstrates the paper's §3.1 strategy end to
// end: probe the target machine's memory identity (the Fig. 2 `lshw`
// excerpt), look up the failure knowledge base, retrieve the most
// probable failure assumption f, select the cheapest adequate access
// method Mj, build it over simulated devices, and survive the fault
// classes the assumption admits.
package main

import (
	"fmt"
	"log"

	"aft/internal/autoconf"
	"aft/internal/memsim"
	"aft/internal/xrand"
)

// lshwFig2 is the paper's Fig. 2 excerpt (a Dell Inspiron 6000).
const lshwFig2 = `  *-memory
       description: System Memory
       size: 1536MiB
     *-bank:0
          description: DIMM DDR Synchronous 533 MHz (1.9 ns)
          vendor: CE00000000000000
          serial: F504F679
          slot: DIMM_A
          size: 1GiB
          clock: 533MHz (1.9ns)
     *-bank:1
          description: DIMM DDR Synchronous 667 MHz (1.5 ns)
          vendor: CE00000000000000
          serial: F33DD2FD
          slot: DIMM_B
          size: 512MiB
          clock: 667MHz (1.5ns)
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Probing the target (lshw output, Fig. 2)")
	probe := autoconf.LSHWProbe{Text: lshwFig2}
	mods, err := probe.Modules()
	if err != nil {
		return err
	}
	for i, m := range mods {
		fmt.Printf("  bank %d: %s\n", i, m)
	}

	// Build the method over simulated devices matching the worst
	// module's profile (lot F5xx runs hot: SEL, SEU and SFI).
	rng := xrand.New(42)
	devCfg := memsim.HarshSDRAMConfig("dimm-a", 512)
	devs := make([]*memsim.Device, 3)
	for i := range devs {
		d, err := memsim.New(devCfg, rng)
		if err != nil {
			return err
		}
		devs[i] = d
	}

	fmt.Println("\n== Selection (knowledge base -> assumption -> cheapest adequate method)")
	sel := autoconf.NewSelector(nil, nil)
	method, decision, err := sel.Configure(probe, devs)
	if err != nil {
		return err
	}
	fmt.Print(decision)

	fmt.Println("\n== Burn-in under the profile's own fault classes")
	const words = 64
	for i := 0; i < words; i++ {
		if err := method.Write(i, uint64(i)*31+7); err != nil {
			return err
		}
	}
	errors := 0
	for tick := 0; tick < 5000; tick++ {
		for _, d := range devs {
			d.Tick()
		}
		addr := tick % words
		v, err := method.Read(addr)
		if err != nil || v != uint64(addr)*31+7 {
			errors++
			_ = method.Write(addr, uint64(addr)*31+7)
		}
	}
	var seus, stucks, sels, sfis int64
	for _, d := range devs {
		a, b, c, dd := d.Stats()
		seus += a
		stucks += b
		sels += c
		sfis += dd
	}
	fmt.Printf("  injected: %d SEUs, %d SELs, %d SFIs across 3 devices\n", seus, sels, sfis)
	fmt.Printf("  data errors observed through %s: %d\n", method.Name(), errors)
	fmt.Println("\nThe assumption f4 was retrieved from the knowledge base, not")
	fmt.Println("hardwired — porting this binary to a CMOS machine would select")
	fmt.Println("M1-scrub instead, at a fraction of the cost.")
	return nil
}
