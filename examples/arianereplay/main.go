// Command arianereplay replays the paper's §2.1 case study — the Ariane
// 5 flight 501 failure — twice: once as flown (the Ariane 4 assumption
// silently hardwired, Hidden Intelligence followed by a Horning clash),
// and once with the library's full treatment chain: an explicit contract
// at the conversion site, an assumption variable with a truth source,
// and the §5 agent web routing the run-time clash into a model-level
// adaptation request.
package main

import (
	"errors"
	"fmt"
	"log"

	"aft"
	"aft/internal/agents"
	"aft/internal/contracts"
)

// flightProfile yields horizontal velocity over flight time; the Ariane
// 5 profile exceeds the Ariane 4 envelope shortly after lift-off.
func flightProfile(t int) int64 {
	return int64(t) * 1200 // reaches 32767 around t=27
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Replay 1: as flown (assumption hardwired)")
	asFlown()

	fmt.Println("\n== Replay 2: with assumption failure tolerance")
	return protected()
}

// asFlown reproduces the silent overflow: the int16 conversion is just
// code; nothing records that it encodes an environmental assumption.
func asFlown() {
	for t := 0; t <= 40; t++ {
		v := flightProfile(t)
		bh := int16(v) // the fatal conversion, unguarded
		if int64(bh) != v {
			fmt.Printf("  t=%2ds: operand error — BH=%d from velocity %d; "+
				"both IRS replicas shut down; launcher lost\n", t, bh, v)
			return
		}
	}
}

// protected runs the same profile under the library's treatment chain.
func protected() error {
	// 1. The assumption is explicit, documented, and monitored.
	reg := aft.NewRegistry()
	if err := reg.Declare(aft.Variable{
		Name: "flight.horizontal-velocity-range",
		Doc: "horizontal velocity fits int16 — Ariane 4 flight envelope; " +
			"MUST be requalified for any new launcher (this is the flight-501 lesson)",
		Syndrome: aft.Horning,
		BindAt:   aft.DeployTime,
		Alternatives: []aft.Alternative{
			{ID: "int16", Description: "narrow envelope"},
			{ID: "int64", Description: "wide envelope"},
		},
		AutoRebind: true,
	}); err != nil {
		return err
	}
	if err := reg.Bind("flight.horizontal-velocity-range", "int16", aft.DeployTime); err != nil {
		return err
	}

	currentVelocity := int64(0)
	if err := reg.AttachTruth("flight.horizontal-velocity-range", func() (string, error) {
		if currentVelocity > 32767 {
			return "int64", nil
		}
		return "int16", nil
	}); err != nil {
		return err
	}

	// 2. The §5 agent web: a run-time clash becomes a model-level
	// adaptation request.
	web := agents.NewWeb(nil)
	if err := web.Attach(&agents.ReactiveAgent{
		AgentName: "flight-envelope-modeler", AgentConcern: agents.ModelConcern,
		Adapt: func(r agents.AdaptationRequest) ([]agents.Knowledge, []agents.AdaptationRequest) {
			fmt.Printf("  model agent: adaptation requested — %s\n", r.Reason)
			return nil, nil
		},
	}); err != nil {
		return err
	}
	bridge, err := agents.NewBridge(web, agents.ModelConcern)
	if err != nil {
		return err
	}
	reg.OnClash(bridge.OnClash)

	// 3. Design by Contract at the conversion site.
	contract, err := contracts.New("irs.bh-conversion")
	if err != nil {
		return err
	}
	contract.Require("velocity fits int16", contracts.Guard(
		func() bool { return currentVelocity <= 32767 },
		"horizontal velocity exceeds the bound assumption"))

	// Fly.
	for t := 0; t <= 40; t++ {
		currentVelocity = flightProfile(t)
		err := contract.Run(func() error {
			_ = int16(currentVelocity) // now guarded
			return nil
		})
		var violation contracts.Violation
		if errors.As(err, &violation) {
			fmt.Printf("  t=%2ds: contract caught the clash before the conversion: %v\n",
				t, violation)
			// Verify the assumption registry: clash + auto-rebind +
			// agent-web propagation.
			clashes := reg.Verify(int64(t))
			for _, c := range clashes {
				fmt.Printf("  registry: %s\n", c)
			}
			// Degrade gracefully: switch to the wide-envelope code path
			// instead of shutting the channel down.
			fmt.Printf("  t=%2ds: guidance continues on the 64-bit path "+
				"(velocity %d)\n", t, currentVelocity)
			break
		}
		if err != nil {
			return err
		}
	}

	if k, ok := web.Lookup("clash/flight.horizontal-velocity-range"); ok {
		fmt.Printf("  shared knowledge base now records: %s = %s\n", k.Key, k.Value)
	}
	return nil
}
