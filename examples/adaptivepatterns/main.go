// Command adaptivepatterns demonstrates the paper's §3.2 strategy: the
// choice between the redoing and reconfiguration design patterns is
// postponed to run time and driven by an alpha-count oracle.
//
// Part 1 replays the Fig. 4 scenario (watchdog firings feeding the
// alpha-count until the fault is labeled "permanent or intermittent").
// Part 2 reshapes a reflective DAG from D1 to D2 as in Fig. 3. Part 3
// shows the execution-level payoff against the two static patterns.
package main

import (
	"fmt"
	"log"

	"aft/internal/accada"
	"aft/internal/alphacount"
	"aft/internal/dag"
	"aft/internal/experiments"
	"aft/internal/faults"
	"aft/internal/ftpatterns"
	"aft/internal/pubsub"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Part 1: the Fig. 4 scenario --------------------------------
	res, err := experiments.RunFig4(experiments.DefaultFig4Config())
	if err != nil {
		return err
	}
	fmt.Print(res.Render())

	// --- Part 2: Fig. 3, the architecture reshapes ------------------
	fmt.Println("\nFig. 3 — reflective DAG transition D1 -> D2")
	live := dag.New()
	for _, n := range []string{"c1", "c2", "c3"} {
		if err := live.AddNode(n, nil); err != nil {
			return err
		}
	}
	if err := live.AddEdge("c1", "c2"); err != nil {
		return err
	}
	if err := live.AddEdge("c2", "c3"); err != nil {
		return err
	}
	d1 := live.Snapshot()

	alt := dag.New()
	for _, n := range []string{"c1", "c2", "c3.1", "c3.2"} {
		if err := alt.AddNode(n, nil); err != nil {
			return err
		}
	}
	for _, e := range [][2]string{{"c1", "c2"}, {"c2", "c3.1"}, {"c3.1", "c3.2"}} {
		if err := alt.AddEdge(e[0], e[1]); err != nil {
			return err
		}
	}
	d2 := alt.Snapshot()

	bus := pubsub.New()
	mgr, err := accada.NewManager(live, bus, alphacount.DefaultConfig())
	if err != nil {
		return err
	}
	if err := mgr.Bind("c3", d1, d2); err != nil {
		return err
	}
	fmt.Printf("  before: nodes %v\n", live.Nodes())
	for i := 0; i < 3; i++ {
		bus.Publish(pubsub.Message{Topic: accada.FaultTopic("c3"), Payload: true})
	}
	fmt.Printf("  after 3 fault notifications (verdict %q): nodes %v\n",
		mgr.Verdict("c3"), live.Nodes())

	// --- Part 3: static patterns vs the adaptive executor -----------
	fmt.Println("\nStatic vs adaptive under a permanent fault (the e1 clash)")
	var latch faults.Latch
	latch.Trip()
	primary := ftpatterns.LatchedVersion(&latch)
	spare := ftpatterns.ReliableVersion()

	redo, err := ftpatterns.NewRedoing(primary, 5)
	if err != nil {
		return err
	}
	exec, err := accada.NewAdaptiveExecutor(alphacount.DefaultConfig(), 5, primary, spare)
	if err != nil {
		return err
	}
	redoFail, adaptFail := 0, 0
	for i := 0; i < 50; i++ {
		if !redo.Invoke().OK {
			redoFail++
		}
		if !exec.Invoke().OK {
			adaptFail++
		}
	}
	redoAttempts, _ := redo.Stats()
	_, adaptAttempts, _, swaps, _ := exec.Stats()
	fmt.Printf("  static redoing:    %2d/50 failed, %3d attempts (livelock)\n", redoFail, redoAttempts)
	fmt.Printf("  adaptive executor: %2d/50 failed, %3d attempts, %d pattern swap(s)\n",
		adaptFail, adaptAttempts, swaps)
	return nil
}
