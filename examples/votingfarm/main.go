// Command votingfarm demonstrates the paper's §3.3 strategy: a
// replication-and-voting restoring organ whose dimensioning is revised
// autonomically from the distance-to-failure of each round.
//
// It first prints the Fig. 5 dtof table, then runs the Fig. 6 staircase
// (a storm of faults raises redundancy; calm decays it), and closes with
// a scaled-down Fig. 7 occupancy histogram.
package main

import (
	"fmt"
	"log"

	"aft/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rows, err := experiments.RunFig5(1)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig5(rows))

	fmt.Println()
	fig6, err := experiments.RunAdaptive(experiments.DefaultFig6Config())
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig6(fig6))

	fmt.Println()
	fig7, err := experiments.RunAdaptive(experiments.DefaultFig7Config(2_000_000))
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderFig7(fig7, 3))
	return nil
}
