// Command theracreplay replays the paper's §2.2 case study — the
// Therac-25 accidents — as an assumption-failure story. The Therac-20's
// software ran under two assumptions that held only by grace of the
// hardware platform: f ("no residual fault exists") and p ("all
// exceptions are caught by the hardware and result in shutting the
// machine down"). Model 25 removed the hardware interlocks; both
// assumptions became false, and the paper classifies the result as a
// Horning failure compounded by Hidden Intelligence (the Therac-20's
// masked exceptions were never fed back) and the Boulding syndrome (a
// closed-world controller with no introspection of its platform).
//
// Replay 1 runs the reused controller on the new platform as shipped.
// Replay 2 declares f and p as assumption variables whose truth sources
// are platform self-tests — the "introspection mechanisms (for instance,
// self-tests) able to verify whether the target platform did include the
// expected mechanisms" whose absence the paper calls out — and shows the
// deploy-time verification refusing the unsafe configuration.
package main

import (
	"fmt"
	"log"

	"aft"
	"aft/internal/xrand"
)

// platform models the relevant difference between the two machines.
type platform struct {
	name               string
	hardwareInterlocks bool
}

// beamController is the reused software: it carries a residual race
// fault that occasionally requests the high-energy beam with the
// shield out.
type beamController struct {
	rng *xrand.Rand
}

// requestDose returns the energy actually delivered; the residual fault
// manifests rarely (the paper: "certain rare combinations of events").
func (c *beamController) requestDose(p platform) (energy int, harmed bool) {
	raceTriggered := c.rng.Bool(0.004)
	if !raceTriggered {
		return 1, false
	}
	// The fault requests ~100x energy. On the Therac-20 the hardware
	// interlock trips and shuts the beam down; on the 25 it fires.
	if p.hardwareInterlocks {
		return 0, false // interlock shutdown, logged nowhere (SHI!)
	}
	return 100, true
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	therac20 := platform{name: "Therac-20", hardwareInterlocks: true}
	therac25 := platform{name: "Therac-25", hardwareInterlocks: false}

	fmt.Println("== Replay 1: the software reused as shipped")
	for _, p := range []platform{therac20, therac25} {
		ctl := &beamController{rng: xrand.New(1986)}
		overdoses := 0
		for i := 0; i < 2000; i++ {
			if _, harmed := ctl.requestDose(p); harmed {
				overdoses++
			}
		}
		fmt.Printf("  %-10s 2000 treatments, %d overdose(s)\n", p.name, overdoses)
	}
	fmt.Println("  (the Therac-20's interlock masked the same fault silently —")
	fmt.Println("   hidden intelligence that never reached the model-25 designers)")

	fmt.Println("\n== Replay 2: assumptions made explicit, platform self-tested")
	reg := aft.NewRegistry()
	if err := reg.Declare(aft.Variable{
		Name: "machine.exception-containment",
		Doc: "assumption p: all exceptions are caught by the hardware and " +
			"result in shutting the machine down (inherited from the Therac-20 platform)",
		Syndrome: aft.Horning,
		BindAt:   aft.DeployTime,
		Alternatives: []aft.Alternative{
			{ID: "hardware-interlocks", Description: "independent hardware containment"},
			{ID: "software-only", Description: "containment is the software's job"},
		},
	}); err != nil {
		return err
	}
	if err := reg.Declare(aft.Variable{
		Name: "software.residual-faults",
		Doc: "assumption f: no residual fault exists (inferred from the " +
			"Therac-20's failure-free record — which the interlocks, not the software, produced)",
		Syndrome: aft.HiddenIntelligence,
		BindAt:   aft.DeployTime,
		Alternatives: []aft.Alternative{
			{ID: "none", Description: "no residual faults"},
			{ID: "present", Description: "residual faults must be assumed present"},
		},
	}); err != nil {
		return err
	}

	// The bindings the Therac-25 designers effectively made.
	if err := reg.Bind("machine.exception-containment", "hardware-interlocks", aft.DeployTime); err != nil {
		return err
	}
	if err := reg.Bind("software.residual-faults", "none", aft.DeployTime); err != nil {
		return err
	}

	// Truth sources: platform self-tests (the missing introspection).
	target := therac25
	if err := reg.AttachTruth("machine.exception-containment", func() (string, error) {
		if target.hardwareInterlocks {
			return "hardware-interlocks", nil
		}
		return "software-only", nil
	}); err != nil {
		return err
	}
	if err := reg.AttachTruth("software.residual-faults", func() (string, error) {
		// Honest engineering position for reused, unverified software.
		return "present", nil
	}); err != nil {
		return err
	}

	clashes := reg.Verify(0)
	fmt.Printf("  deploy-time verification on the %s found %d clash(es):\n",
		target.name, len(clashes))
	for _, c := range clashes {
		fmt.Printf("    %s\n", c)
	}
	if len(clashes) > 0 {
		fmt.Println("  => configuration refused: treatments do not start until the")
		fmt.Println("     containment assumption is rebound and the interlock restored")
	}

	// The Boulding reading of the same story.
	closedWorld := aft.Classify(aft.Traits{Dynamic: true})
	fmt.Printf("\n  Boulding: the shipped controller is a %v; its environment demanded %v (clash: %v)\n",
		closedWorld, aft.Cell, aft.BouldingClash(closedWorld, aft.Cell))
	return nil
}
