// Command aft-introspect scans Go source files for hidden assumptions —
// the §4 introspection idea applied to this library's own host language.
// It flags narrowing integer conversions (the Ariane 501 shape), magic
// dimensioning thresholds, assumption-bearing comments, unchecked type
// assertions, and environment lookups, and suggests the explicit
// assumption variable each one is hiding.
//
// Usage:
//
//	aft-introspect [paths ...]      # files or directories; default: .
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aft/internal/cli"
	"aft/internal/introspect"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fset := flag.NewFlagSet("aft-introspect", flag.ContinueOnError)
	if done, err := cli.Parse(fset, args, stdout); done {
		return err
	}
	paths := fset.Args()
	if len(paths) == 0 {
		paths = []string{"."}
	}

	files := make(map[string]string)
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return err
		}
		if !info.IsDir() {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			files[p] = string(data)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[path] = string(data)
			return nil
		})
		if err != nil {
			return err
		}
	}

	findings, err := introspect.ScanFiles(files)
	if err != nil {
		return err
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	sum := introspect.Summary(findings)
	cats := make([]introspect.Category, 0, len(sum))
	for c := range sum {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	fmt.Fprintf(stdout, "\n%d finding(s) in %d file(s)\n", len(findings), len(files))
	for _, c := range cats {
		fmt.Fprintf(stdout, "  %-22s %d\n", c.String(), sum[c])
	}
	return nil
}
