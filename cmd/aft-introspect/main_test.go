package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFindsNarrowingConversion(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nfunc f(v int64) int16 { return int16(v) }\n"
	path := filepath.Join(dir, "ariane.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{dir}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "finding(s) in 1 file(s)") {
		t.Fatalf("summary missing:\n%s", got)
	}
	if !strings.Contains(got, "ariane.go") {
		t.Fatalf("finding for ariane.go missing:\n%s", got)
	}
}

func TestRunMissingPath(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"/does/not/exist"}, &out); err == nil {
		t.Fatal("missing path accepted")
	}
}
