// Command aft-bench regenerates every figure of the paper plus the
// derived ablations, printing the rows/series the paper reports. It is
// the reference harness behind EXPERIMENTS.md.
//
// Usage:
//
//	aft-bench [-fig 4|5|6|7|e5|e6|e7|e8|all] [-steps N] [-seed S] [-parallel W]
//
// -steps applies to the Fig. 7 run; pass 65000000 for the paper's full
// 65-million-step experiment. -parallel runs the independent-trial
// sweeps (E8, E9, E10) on a worker pool of W goroutines (0 = one per
// CPU); results are byte-identical to the serial run.
package main

import (
	"flag"
	"fmt"
	"log"

	"aft/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fig := flag.String("fig", "all", "which artefact to regenerate: 4, 5, 6, 7, e5..e10, all")
	steps := flag.Int64("steps", 2_000_000, "rounds for the Fig. 7 run (paper: 65000000)")
	seed := flag.Uint64("seed", 1906, "random seed")
	parallel := flag.Int("parallel", 1, "worker pool for the E8/E9/E10 sweeps: 1 = serial, 0 = one per CPU, N = N workers")
	flag.Parse()

	runners := map[string]func() error{
		"4": func() error {
			res, err := experiments.RunFig4(experiments.DefaultFig4Config())
			if err != nil {
				return err
			}
			fmt.Print(res.Render())
			return nil
		},
		"5": func() error {
			rows, err := experiments.RunFig5(*seed)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig5(rows))
			return nil
		},
		"6": func() error {
			cfg := experiments.DefaultFig6Config()
			cfg.Seed = *seed
			res, err := experiments.RunAdaptive(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig6(res))
			return nil
		},
		"7": func() error {
			cfg := experiments.DefaultFig7Config(*steps)
			cfg.Seed = *seed
			fmt.Printf("(running %d rounds)\n", cfg.Steps)
			res, err := experiments.RunAdaptive(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFig7(res, cfg.Policy.Min))
			return nil
		},
		"e5": func() error {
			rows, err := experiments.RunE5(experiments.DefaultE5Config())
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderPatternRows(
				"E5 — permanent fault: redoing livelocks, adaptation escapes", rows))
			return nil
		},
		"e6": func() error {
			rows, err := experiments.RunE6(experiments.DefaultE6Config())
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderPatternRows(
				"E6 — transient faults: reconfiguration wastes spares, adaptation does not", rows))
			return nil
		},
		"e7": func() error {
			cells, err := experiments.RunE7(experiments.DefaultE7Config())
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderE7(cells))
			return nil
		},
		"e8": func() error {
			rows, err := experiments.RunE8Parallel(200_000, *seed, *parallel)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderE8(rows))
			return nil
		},
		"e9": func() error {
			rows, err := experiments.RunE9Parallel(experiments.DefaultE9Config(), *parallel)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderE9(rows))
			return nil
		},
		"e10": func() error {
			rows, err := experiments.RunE10Parallel(200_000, *seed, nil, *parallel)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderE10(rows))
			return nil
		},
	}

	order := []string{"4", "5", "6", "7", "e5", "e6", "e7", "e8", "e9", "e10"}
	usesPool := map[string]bool{"e8": true, "e9": true, "e10": true}
	if *parallel != 1 && (*fig == "all" || usesPool[*fig]) {
		fmt.Printf("(E8/E9/E10 sweeps on a %d-worker pool)\n", experiments.Workers(*parallel))
	}
	if *fig != "all" {
		r, ok := runners[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (want 4, 5, 6, 7, e5..e10, all)", *fig)
		}
		return r()
	}
	for _, k := range order {
		fmt.Printf("\n================ %s ================\n", k)
		if err := runners[k](); err != nil {
			return err
		}
	}
	return nil
}
