// Command aft-bench regenerates every figure of the paper plus the
// derived ablations, printing the rows/series the paper reports. It is
// the reference harness behind EXPERIMENTS.md.
//
// Usage:
//
//	aft-bench [-fig 4|5|6|7|e5|e6|e7|e8|bench7|benchbatch|all] [-steps N]
//	          [-seed S] [-parallel W] [-batch-width W] [-bench-out FILE]
//	          [-cache DIR] [-trajectory FILE]
//
// -steps applies to the Fig. 7 run; pass 65000000 for the paper's full
// 65-million-step experiment. -parallel runs the independent-trial
// sweeps (E8, E9, E10) on a worker pool of W goroutines (0 = one per
// CPU); results are byte-identical to the serial run.
//
// -cache DIR memoizes the E8/E9/E10 sweep cells on disk,
// content-addressed by the cell's complete parameter set (spec hash +
// seed): cells already computed by any previous invocation are served
// from the cache and only fresh cells run. The rows are byte-identical
// with and without the cache.
//
// -fig bench7 times the §3.3 campaign hot path on both the fused
// zero-allocation engine and the pre-engine reference loop, and writes a
// JSON snapshot (ns/round, allocs/round, rounds/sec, speedup) to
// -bench-out so the perf trajectory is tracked PR over PR; it also
// appends a dated entry to -trajectory, the append-only perf history
// (the snapshot alone is a single overwritten point). It is not part of
// "all".
//
// -fig benchbatch measures the batch-lockstep campaign engine across a
// cores × batch-width grid: for every (cores, width) point it runs a
// width-lane sweep per worker through RunBatchParallel, checks lane 0's
// Fig. 7 transcript against the scalar engine, and appends one
// trajectory entry per point (with cores and batch_width fields)
// reporting aggregate lane-rounds/sec and the speedup over the scalar
// single-core baseline. -batch-width W collapses the width axis to the
// single value W. Not part of "all".
//
// -serve-load ignores -fig and runs the aft-serve load harness instead:
// an in-process jobs server driven by -load-jobs concurrent burst
// submitters spread across -load-clients client IDs plus one closed-loop
// trickle client, once under the fifo baseline scheduler and once under
// the fair scheduler. Both runs' p50/p99 submit-to-done latencies,
// per-client fairness spread, and drop counters are appended to
// -trajectory; -load-assert-fairness turns the expected fairness win
// (fair trickle p99 below the fifo baseline's) into a hard check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"aft/internal/checkpoint"
	"aft/internal/cli"
	"aft/internal/experiments"
	"aft/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which artefact to regenerate: 4, 5, 6, 7, e5..e10, bench7, benchbatch, all")
	steps := fs.Int64("steps", 2_000_000, "rounds for the Fig. 7 run (paper: 65000000)")
	seed := fs.Uint64("seed", 1906, "random seed")
	parallel := fs.Int("parallel", 1, "worker pool for the E8/E9/E10 sweeps: 1 = serial, 0 = one per CPU, N = N workers")
	batchWidth := fs.Int("batch-width", 0, "lanes per batch for -fig benchbatch: 0 sweeps {1,8,16,32}, W measures only width W")
	benchOut := fs.String("bench-out", "BENCH_fig7.json", "where -fig bench7 writes its JSON snapshot")
	cacheDir := fs.String("cache", "", "memoize E8/E9/E10 sweep cells in DIR, content-addressed by spec hash + seed (empty = no cache)")
	trajectory := fs.String("trajectory", "BENCH_trajectory.json", "append-only perf history -fig bench7 extends (empty = skip)")
	serveLoad := fs.Bool("serve-load", false, "run the aft-serve load harness (fifo baseline then fair scheduler) and append both results to -trajectory")
	loadJobs := fs.Int("load-jobs", 1000, "serve-load: burst jobs, one concurrent submitter each")
	loadClients := fs.Int("load-clients", 8, "serve-load: burst client IDs the submitters are spread across")
	loadWorkers := fs.Int("load-workers", 2, "serve-load: server worker goroutines")
	loadHorizon := fs.Int64("load-horizon", 500, "serve-load: scenario horizon per job (service time knob)")
	loadTrickle := fs.Int("load-trickle", 16, "serve-load: closed-loop jobs from the one trickle client")
	loadRate := fs.Float64("load-rate", 0, "serve-load: paced submissions/sec per burst submitter (0 = all at once)")
	loadAssert := fs.Bool("load-assert-fairness", false, "serve-load: fail unless the fair run's trickle p99 beats the fifo baseline's")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	if *serveLoad {
		return runServeLoad(serveLoadOptions{
			Jobs:           *loadJobs,
			Clients:        *loadClients,
			Workers:        *loadWorkers,
			Horizon:        *loadHorizon,
			TrickleJobs:    *loadTrickle,
			Rate:           *loadRate,
			Seed:           *seed,
			Trajectory:     *trajectory,
			AssertFairness: *loadAssert,
		}, stdout)
	}

	var cache *experiments.SweepCache
	if *cacheDir != "" {
		var err error
		if cache, err = experiments.OpenSweepCache(*cacheDir); err != nil {
			return err
		}
	}

	runners := map[string]func() error{
		"4": func() error {
			res, err := experiments.RunFig4(experiments.DefaultFig4Config())
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, res.Render())
			return nil
		},
		"5": func() error {
			rows, err := experiments.RunFig5(*seed)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderFig5(rows))
			return nil
		},
		"6": func() error {
			cfg := experiments.DefaultFig6Config()
			cfg.Seed = *seed
			res, err := experiments.RunAdaptive(cfg)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderFig6(res))
			return nil
		},
		"7": func() error {
			cfg := experiments.DefaultFig7Config(*steps)
			cfg.Seed = *seed
			fmt.Fprintf(stdout, "(running %d rounds)\n", cfg.Steps)
			res, err := experiments.RunAdaptive(cfg)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderFig7(res, cfg.Policy.Min))
			return nil
		},
		"e5": func() error {
			rows, err := experiments.RunE5(experiments.DefaultE5Config())
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderPatternRows(
				"E5 — permanent fault: redoing livelocks, adaptation escapes", rows))
			return nil
		},
		"e6": func() error {
			rows, err := experiments.RunE6(experiments.DefaultE6Config())
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderPatternRows(
				"E6 — transient faults: reconfiguration wastes spares, adaptation does not", rows))
			return nil
		},
		"e7": func() error {
			cells, err := experiments.RunE7(experiments.DefaultE7Config())
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderE7(cells))
			return nil
		},
		"e8": func() error {
			rows, err := experiments.RunE8ParallelCached(200_000, *seed, *parallel, cache)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderE8(rows))
			return nil
		},
		"e9": func() error {
			rows, err := experiments.RunE9ParallelCached(experiments.DefaultE9Config(), *parallel, cache)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderE9(rows))
			return nil
		},
		"e10": func() error {
			rows, err := experiments.RunE10ParallelCached(200_000, *seed, nil, *parallel, cache)
			if err != nil {
				return err
			}
			fmt.Fprint(stdout, experiments.RenderE10(rows))
			return nil
		},
		"bench7": func() error {
			return runBench7(*steps, *seed, *benchOut, *trajectory, stdout)
		},
		"benchbatch": func() error {
			return runBenchBatch(*steps, *seed, *batchWidth, *trajectory, stdout)
		},
	}

	order := []string{"4", "5", "6", "7", "e5", "e6", "e7", "e8", "e9", "e10"}
	usesPool := map[string]bool{"e8": true, "e9": true, "e10": true}
	if *parallel != 1 && (*fig == "all" || usesPool[*fig]) {
		fmt.Fprintf(stdout, "(E8/E9/E10 sweeps on a %d-worker pool)\n", experiments.Workers(*parallel))
	}
	reportCache := func() {
		if cache == nil {
			return
		}
		hits, misses := cache.Stats()
		fmt.Fprintf(stdout, "(sweep cache %s: %d hits, %d misses)\n", cache.Dir(), hits, misses)
	}
	if *fig != "all" {
		r, ok := runners[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (want 4, 5, 6, 7, e5..e10, bench7, benchbatch, all)", *fig)
		}
		if err := r(); err != nil {
			return err
		}
		if usesPool[*fig] {
			reportCache()
		}
		return nil
	}
	for _, k := range order {
		fmt.Fprintf(stdout, "\n================ %s ================\n", k)
		if err := runners[k](); err != nil {
			return err
		}
	}
	reportCache()
	return nil
}

// trajectoryEntry is one dated point of the append-only perf history.
// bench7 entries leave Cores and BatchWidth zero (scalar, single
// campaign); benchbatch entries set both, turning the file into the
// cores × batch-width scaling record of the batch engine. For a
// benchbatch entry, EngineNs and RoundsSec are per lane-round and
// aggregate lane-rounds/sec, RefNs is the scalar fused engine's
// single-core ns/round on the same host, and Speedup is aggregate
// batch throughput over that scalar baseline.
type trajectoryEntry struct {
	Date       string  `json:"date"`
	Steps      int64   `json:"steps"`
	Seed       uint64  `json:"seed"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Cores      int     `json:"cores,omitempty"`
	BatchWidth int     `json:"batch_width,omitempty"`
	EngineNs   float64 `json:"engine_ns_per_round"`
	RefNs      float64 `json:"reference_ns_per_round"`
	Speedup    float64 `json:"speedup"`
	RoundsSec  float64 `json:"engine_rounds_per_sec"`
}

// appendTrajectory extends the perf-history file with one entry. The
// file is a JSON array; a missing file starts a new history, a corrupt
// one is an error (history should never be silently discarded). The
// history holds entries of several schemas (bench7, benchbatch,
// serve-load), so existing entries pass through as raw JSON — an
// appender must never strip fields it does not know about.
func appendTrajectory(path string, e any) error {
	var entries []json.RawMessage
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("%s: corrupt perf history: %w", path, err)
		}
	case os.IsNotExist(err):
	default:
		return err
	}
	raw, err := json.Marshal(e)
	if err != nil {
		return err
	}
	entries = append(entries, raw)
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	// A corrupt history is a hard error above, so a kill mid-write must
	// never be able to produce one: the replacement is atomic.
	return checkpoint.WriteFileAtomic(path, append(out, '\n'))
}

// benchSnapshot is the BENCH_fig7.json schema: the §3.3 campaign hot
// path measured on the fused engine and the reference loop, plus the
// campaign's own sanity metrics so a perf gain that breaks the science
// is visible in the same file.
type benchSnapshot struct {
	Experiment string `json:"experiment"`
	Steps      int64  `json:"steps"`
	Seed       uint64 `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Engine    benchRow `json:"engine"`
	Reference benchRow `json:"reference"`
	// Speedup is reference ns/round over engine ns/round.
	Speedup float64 `json:"speedup"`

	// Campaign sanity: both paths must agree on these.
	Failures      int64   `json:"failures"`
	Resizes       int64   `json:"resizes"`
	TimeAtMinimum float64 `json:"time_at_min_redundancy"`
}

// benchRow is one engine's measurement.
type benchRow struct {
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
}

// measureCampaign times fn over steps rounds, reporting per-round cost
// from wall time and the allocator's own counters.
func measureCampaign(steps int64, fn func() error) (benchRow, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	if err := fn(); err != nil {
		return benchRow{}, err
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	fsteps := float64(steps)
	return benchRow{
		NsPerRound:     float64(elapsed.Nanoseconds()) / fsteps,
		AllocsPerRound: float64(m1.Mallocs-m0.Mallocs) / fsteps,
		BytesPerRound:  float64(m1.TotalAlloc-m0.TotalAlloc) / fsteps,
		RoundsPerSec:   fsteps / elapsed.Seconds(),
	}, nil
}

// runBench7 benchmarks the Fig. 7 campaign on both engines, writes the
// snapshot, and appends to the perf history.
func runBench7(steps int64, seed uint64, out, trajectory string, stdout io.Writer) error {
	cfg := experiments.DefaultFig7Config(steps)
	cfg.Seed = seed
	snap := benchSnapshot{
		Experiment: "fig7-adaptive-campaign",
		Steps:      cfg.Steps,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	fmt.Fprintf(stdout, "bench7: %d rounds per engine (seed %d)\n", cfg.Steps, cfg.Seed)
	// Both timed regions include campaign construction and result
	// folding, so the rows are like-for-like even at small -steps.
	var engRes, refRes experiments.AdaptiveRunResult
	var resizes int64
	var err error
	snap.Engine, err = measureCampaign(cfg.Steps, func() error {
		eng, err := experiments.NewCampaign(cfg)
		if err != nil {
			return err
		}
		eng.Run(cfg.Steps)
		engRes = eng.Result()
		resizes = eng.Switchboard().Resizes()
		return nil
	})
	if err != nil {
		return err
	}
	snap.Reference, err = measureCampaign(cfg.Steps, func() error {
		var err error
		refRes, err = experiments.RunAdaptiveReference(cfg)
		return err
	})
	if err != nil {
		return err
	}
	if a, b := experiments.RenderFig7(engRes, cfg.Policy.Min),
		experiments.RenderFig7(refRes, cfg.Policy.Min); a != b {
		return fmt.Errorf("bench7: engine and reference transcripts diverge — refusing to snapshot")
	}
	snap.Speedup = snap.Reference.NsPerRound / snap.Engine.NsPerRound
	snap.Failures = engRes.Failures
	snap.Resizes = resizes
	snap.TimeAtMinimum = engRes.MinFraction

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := checkpoint.WriteFileAtomic(out, data); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "engine:    %8.1f ns/round  %6.4f allocs/round  %12.0f rounds/sec\n",
		snap.Engine.NsPerRound, snap.Engine.AllocsPerRound, snap.Engine.RoundsPerSec)
	fmt.Fprintf(stdout, "reference: %8.1f ns/round  %6.4f allocs/round  %12.0f rounds/sec\n",
		snap.Reference.NsPerRound, snap.Reference.AllocsPerRound, snap.Reference.RoundsPerSec)
	fmt.Fprintf(stdout, "speedup:   %.2fx  (snapshot written to %s)\n", snap.Speedup, out)
	if trajectory != "" {
		err := appendTrajectory(trajectory, trajectoryEntry{
			Date:       time.Now().UTC().Format(time.RFC3339),
			Steps:      snap.Steps,
			Seed:       snap.Seed,
			GoMaxProcs: snap.GoMaxProcs,
			EngineNs:   snap.Engine.NsPerRound,
			RefNs:      snap.Reference.NsPerRound,
			Speedup:    snap.Speedup,
			RoundsSec:  snap.Engine.RoundsPerSec,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "perf history appended to %s\n", trajectory)
	}
	return nil
}

// benchBatchCores picks the cores axis of the benchbatch grid: powers
// of two up to the machine's CPU count, always ending at the full
// count. On a 4-core runner this is {1, 2, 4}; a single-core host
// measures only {1} rather than pretending timeshared threads are
// cores.
func benchBatchCores() []int {
	max := runtime.NumCPU()
	var cores []int
	for c := 1; c < max; c *= 2 {
		cores = append(cores, c)
	}
	return append(cores, max)
}

// runBenchBatch measures the batch-lockstep engine across a cores ×
// batch-width grid and appends one trajectory entry per point.
//
// Every grid point runs width lanes per worker (width × cores lanes in
// total, so each worker owns exactly one batch) for the configured
// number of rounds, under GOMAXPROCS pinned to the point's core count.
// The scalar baseline is the fused engine on lane 0's seed, single
// campaign, and lane 0's Fig. 7 transcript at every grid point must
// match the baseline's — a throughput number from an engine that
// diverged from the science is worthless, so divergence is a hard
// error, not a footnote.
func runBenchBatch(steps int64, seed uint64, batchWidth int, trajectory string, stdout io.Writer) error {
	cfg := experiments.DefaultFig7Config(steps)

	widths := []int{1, 8, 16, 32}
	if batchWidth > 0 {
		widths = []int{batchWidth}
	}
	cores := benchBatchCores()
	maxLanes := widths[len(widths)-1] * cores[len(cores)-1]
	// Seeds is prefix-stable in its count, so lane 0 draws the same seed
	// at every grid size — and it is the seed the baseline runs.
	seeds := xrand.Seeds(seed, maxLanes)

	baseCfg := cfg
	baseCfg.Seed = seeds[0]
	fmt.Fprintf(stdout, "benchbatch: scalar baseline, %d rounds (seed %d)\n", cfg.Steps, baseCfg.Seed)
	var baseRes experiments.AdaptiveRunResult
	baseline, err := measureCampaign(cfg.Steps, func() error {
		var err error
		baseRes, err = experiments.RunAdaptive(baseCfg)
		return err
	})
	if err != nil {
		return err
	}
	baseFig7 := experiments.RenderFig7(baseRes, cfg.Policy.Min)
	fmt.Fprintf(stdout, "scalar:    %8.1f ns/round  %12.0f rounds/sec\n",
		baseline.NsPerRound, baseline.RoundsPerSec)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	now := time.Now().UTC().Format(time.RFC3339)
	for _, c := range cores {
		runtime.GOMAXPROCS(c)
		for _, w := range widths {
			lanes := w * c
			t0 := time.Now()
			results, err := experiments.RunBatchParallel(cfg, seeds[:lanes], w, c)
			if err != nil {
				return err
			}
			elapsed := time.Since(t0)
			if got := experiments.RenderFig7(results[0], cfg.Policy.Min); got != baseFig7 {
				return fmt.Errorf("benchbatch: cores=%d width=%d: lane 0 transcript diverges from the scalar engine — refusing to record", c, w)
			}
			totalRounds := float64(lanes) * float64(cfg.Steps)
			roundsSec := totalRounds / elapsed.Seconds()
			laneNs := float64(elapsed.Nanoseconds()) / totalRounds
			speedup := roundsSec / baseline.RoundsPerSec
			fmt.Fprintf(stdout, "cores=%d width=%-3d %8.1f ns/lane-round  %12.0f rounds/sec  %6.2fx vs scalar\n",
				c, w, laneNs, roundsSec, speedup)
			if trajectory != "" {
				err := appendTrajectory(trajectory, trajectoryEntry{
					Date:       now,
					Steps:      cfg.Steps,
					Seed:       seed,
					GoMaxProcs: c,
					Cores:      c,
					BatchWidth: w,
					EngineNs:   laneNs,
					RefNs:      baseline.NsPerRound,
					Speedup:    speedup,
					RoundsSec:  roundsSec,
				})
				if err != nil {
					return err
				}
			}
		}
	}
	if trajectory != "" {
		fmt.Fprintf(stdout, "perf history appended to %s\n", trajectory)
	}
	return nil
}
