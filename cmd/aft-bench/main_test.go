package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig4(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 4") {
		t.Fatalf("Fig. 4 output missing:\n%s", out.String())
	}
}

func TestRunFig5(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 5") {
		t.Fatalf("Fig. 5 output missing:\n%s", out.String())
	}
}

func TestRunUnknownFig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBench7WritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("bench7 times two engine runs")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	traj := filepath.Join(dir, "trajectory.json")
	var buf strings.Builder
	if err := run([]string{"-fig", "bench7", "-steps", "50000", "-bench-out", out, "-trajectory", traj}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup:") {
		t.Fatalf("bench7 output lacks speedup line:\n%s", buf.String())
	}
}

// TestBench7AppendsTrajectory asserts the perf history grows by one
// dated entry per bench7 run instead of being overwritten.
func TestBench7AppendsTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("bench7 times two engine runs")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	traj := filepath.Join(dir, "trajectory.json")
	for i := 0; i < 2; i++ {
		var buf strings.Builder
		if err := run([]string{"-fig", "bench7", "-steps", "30000", "-bench-out", out, "-trajectory", traj}, &buf); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(traj)
	if err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatalf("trajectory is not a JSON array: %v\n%s", err, data)
	}
	if len(entries) != 2 {
		t.Fatalf("trajectory has %d entries after 2 runs", len(entries))
	}
	for _, e := range entries {
		if e["date"] == "" || e["speedup"] == nil {
			t.Fatalf("entry lacks date/speedup: %v", e)
		}
	}
	// A corrupt history must be an error, not silently discarded.
	if err := os.WriteFile(traj, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-fig", "bench7", "-steps", "30000", "-bench-out", out, "-trajectory", traj}, &buf); err == nil {
		t.Fatal("corrupt trajectory accepted")
	}
}

// TestSweepCacheFlag asserts -cache serves repeat invocations from the
// memoized cells with identical output.
func TestSweepCacheFlag(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	runE10 := func(args ...string) string {
		var buf strings.Builder
		if err := run(append([]string{"-fig", "e10"}, args...), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	plain := runE10()
	cold := runE10("-cache", cacheDir)
	warm := runE10("-cache", cacheDir)
	if !strings.Contains(cold, "4 misses") {
		t.Fatalf("cold cache stats missing:\n%s", cold)
	}
	if !strings.Contains(warm, "4 hits, 0 misses") {
		t.Fatalf("warm cache stats missing:\n%s", warm)
	}
	strip := func(s string) string {
		i := strings.Index(s, "(sweep cache")
		if i < 0 {
			return s
		}
		return s[:i]
	}
	if strip(cold) != plain || strip(warm) != plain {
		t.Fatal("cached E10 output differs from uncached")
	}
}
