package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFig4(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 4") {
		t.Fatalf("Fig. 4 output missing:\n%s", out.String())
	}
}

func TestRunFig5(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 5") {
		t.Fatalf("Fig. 5 output missing:\n%s", out.String())
	}
}

func TestRunUnknownFig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBench7WritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("bench7 times two engine runs")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf strings.Builder
	if err := run([]string{"-fig", "bench7", "-steps", "50000", "-bench-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup:") {
		t.Fatalf("bench7 output lacks speedup line:\n%s", buf.String())
	}
}
