// Serve-load harness: drives an in-process jobs server with a burst of
// concurrent submitters plus one closed-loop trickle client, once under
// the fifo baseline scheduler and once under the fair scheduler, and
// appends both runs' latency/fairness/drop numbers to the perf
// trajectory. The workload is seeded and the job set is
// content-addressed, so the two runs execute the identical job
// population; only wall-clock latencies vary with the host.
package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"aft/internal/jobs"
	"aft/internal/pubsub"
	"aft/internal/redundancy"
	"aft/internal/scenario"
)

// serveLoadOptions configures one -serve-load invocation (both runs
// share it, so the fifo/fair comparison is apples to apples).
type serveLoadOptions struct {
	// Jobs is the burst population; each job gets its own concurrent
	// submitter goroutine.
	Jobs int
	// Clients is how many client IDs the burst submitters are spread
	// across (the trickle client is one more on top).
	Clients int
	// Workers is the server's local worker pool size.
	Workers int
	// Horizon is the per-job scenario horizon — the service-time knob.
	Horizon int64
	// TrickleJobs is the closed-loop depth of the trickle client: each
	// job is submitted only after the previous one finished.
	TrickleJobs int
	// Rate paces each burst submitter to this many submissions per
	// second; 0 submits everything at once.
	Rate float64
	// Seed salts every job's scenario seed, so re-running with a new
	// seed produces a disjoint job population.
	Seed uint64
	// Trajectory is the perf-history file both entries are appended to
	// (empty = skip).
	Trajectory string
	// AssertFairness makes the expected fairness win a hard check: the
	// fair run's trickle p99 must be below the fifo baseline's.
	AssertFairness bool
}

// serveLoadEntry is the trajectory schema for one serve-load run. It
// shares the file with the bench7/benchbatch entries; appendTrajectory
// preserves entries of every schema.
type serveLoadEntry struct {
	Date           string  `json:"date"`
	Experiment     string  `json:"experiment"`
	Scheduler      string  `json:"scheduler"`
	Jobs           int     `json:"jobs"`
	Clients        int     `json:"clients"`
	Workers        int     `json:"workers"`
	Horizon        int64   `json:"horizon"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	TrickleP50Ms   float64 `json:"trickle_p50_ms"`
	TrickleP99Ms   float64 `json:"trickle_p99_ms"`
	FairnessSpread float64 `json:"fairness_spread"`
	SSEDropped     int64   `json:"sse_dropped"`
	RateLimited    int64   `json:"rate_limited"`
	QueueRejected  int64   `json:"queue_rejected"`
	ElapsedMs      float64 `json:"elapsed_ms"`
}

// serveLoadResult is one run's raw measurements before they are dated
// into a trajectory entry.
type serveLoadResult struct {
	scheduler      string
	latencies      []float64 // ms, every burst + trickle job
	trickle        []float64 // ms, trickle jobs only
	fairnessSpread float64   // max/min per-client goodput across burst clients
	sseDropped     int64
	rateLimited    int64
	queueRejected  int64
	elapsed        time.Duration
}

// loadPriorities spreads the burst jobs across the three scheduling
// classes deterministically by index.
var loadPriorities = []string{"high", "normal", "low"}

// runServeLoad runs the harness under both schedulers, prints a
// comparison, appends both trajectory entries, and (optionally)
// enforces the fairness win.
func runServeLoad(o serveLoadOptions, stdout io.Writer) error {
	if o.Jobs < 1 || o.Clients < 1 || o.TrickleJobs < 1 {
		return fmt.Errorf("serve-load: jobs, clients, and trickle counts must be positive")
	}
	results := make(map[string]serveLoadResult, 2)
	for _, mode := range []string{"fifo", "fair"} {
		fmt.Fprintf(stdout, "serve-load: %d burst submitters (%d clients) + %d trickle jobs, %d workers, scheduler=%s\n",
			o.Jobs, o.Clients, o.TrickleJobs, o.Workers, mode)
		res, err := runServeLoadOnce(o, mode)
		if err != nil {
			return err
		}
		results[mode] = res
		fmt.Fprintf(stdout,
			"  %-4s  p50 %8.2fms  p99 %8.2fms  trickle p50 %8.2fms  p99 %8.2fms  spread %.2fx  sse-drops %d  elapsed %.0fms\n",
			mode, pctile(res.latencies, 0.50), pctile(res.latencies, 0.99),
			pctile(res.trickle, 0.50), pctile(res.trickle, 0.99),
			res.fairnessSpread, res.sseDropped, res.elapsed.Seconds()*1000)
	}

	fifoP99 := pctile(results["fifo"].trickle, 0.99)
	fairP99 := pctile(results["fair"].trickle, 0.99)
	fmt.Fprintf(stdout, "serve-load: trickle p99 fifo %.2fms vs fair %.2fms\n", fifoP99, fairP99)
	if o.AssertFairness && fairP99 >= fifoP99 {
		return fmt.Errorf("serve-load: fairness regression: fair trickle p99 %.2fms >= fifo baseline %.2fms", fairP99, fifoP99)
	}

	if o.Trajectory != "" {
		date := time.Now().UTC().Format(time.RFC3339)
		for _, mode := range []string{"fifo", "fair"} {
			res := results[mode]
			e := serveLoadEntry{
				Date:           date,
				Experiment:     "serve-load",
				Scheduler:      mode,
				Jobs:           o.Jobs,
				Clients:        o.Clients,
				Workers:        o.Workers,
				Horizon:        o.Horizon,
				GoMaxProcs:     runtime.GOMAXPROCS(0),
				P50Ms:          pctile(res.latencies, 0.50),
				P99Ms:          pctile(res.latencies, 0.99),
				TrickleP50Ms:   pctile(res.trickle, 0.50),
				TrickleP99Ms:   pctile(res.trickle, 0.99),
				FairnessSpread: res.fairnessSpread,
				SSEDropped:     res.sseDropped,
				RateLimited:    res.rateLimited,
				QueueRejected:  res.queueRejected,
				ElapsedMs:      res.elapsed.Seconds() * 1000,
			}
			if err := appendTrajectory(o.Trajectory, e); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "appended 2 serve-load entries to %s\n", o.Trajectory)
	}
	return nil
}

// runServeLoadOnce measures one scheduler mode on a fresh store.
func runServeLoadOnce(o serveLoadOptions, mode string) (serveLoadResult, error) {
	dir, err := os.MkdirTemp("", "aft-serve-load-*")
	if err != nil {
		return serveLoadResult{}, err
	}
	defer os.RemoveAll(dir)

	s, err := jobs.NewServer(jobs.Options{Dir: dir, Workers: o.Workers, Scheduler: mode})
	if err != nil {
		return serveLoadResult{}, err
	}
	// Error-path backstop; the success path returns s.Close()'s error
	// below (Close is idempotent).
	defer func() { _ = s.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		return serveLoadResult{}, err
	}

	// A deliberately slow fan-out consumer, so the run also measures the
	// bus's slow-subscriber drop accounting under real event volume.
	slow := s.EventBus().Subscribe("jobs/*", func(pubsub.Message) {
		time.Sleep(200 * time.Microsecond)
	})
	defer s.EventBus().Unsubscribe(slow)

	type rec struct {
		client  string
		ms      float64
		doneAt  time.Duration // since start, for goodput
		failure error
	}
	recs := make([]rec, o.Jobs)
	start := time.Now()

	// Burst phase: every job gets its own submitter goroutine. submitted
	// gates the trickle phase on admission (not completion) of the whole
	// backlog, so under fifo the trickle client genuinely queues behind
	// it; finished gates the final accounting.
	var submitted, finished sync.WaitGroup
	submitted.Add(o.Jobs)
	finished.Add(o.Jobs)
	for i := 0; i < o.Jobs; i++ {
		go func(i int) {
			defer finished.Done()
			if o.Rate > 0 {
				// Pace arrivals: each client's stream fires at Rate
				// submissions per second, so submitter i waits for its
				// position within its client's stream.
				time.Sleep(time.Duration(float64(i/o.Clients) / o.Rate * float64(time.Second)))
			}
			spec := loadSpec(o, "", i)
			spec.Client = fmt.Sprintf("client-%02d", i%o.Clients)
			spec.Priority = loadPriorities[i%len(loadPriorities)]
			t0 := time.Now()
			st, _, err := s.Submit(spec)
			submitted.Done()
			if err != nil {
				recs[i] = rec{failure: err}
				return
			}
			res, err := s.Wait(ctx, st.ID)
			if err == nil && res.State != jobs.StateDone {
				err = fmt.Errorf("job %s ended %s: %s", st.ID, res.State, res.Error)
			}
			recs[i] = rec{
				client: spec.Client,
				ms:     time.Since(t0).Seconds() * 1000,
				doneAt: time.Since(start),
			}
			if err != nil {
				recs[i].failure = err
			}
		}(i)
	}
	submitted.Wait()

	// Trickle phase: one low-volume client, closed loop, normal
	// priority. Under fifo each job waits behind whatever burst backlog
	// remains; under fair queuing it only waits its own turn.
	trickle := make([]float64, 0, o.TrickleJobs)
	for i := 0; i < o.TrickleJobs; i++ {
		spec := loadSpec(o, "trickle", i)
		spec.Client = "trickle"
		t0 := time.Now()
		st, _, err := s.Submit(spec)
		if err != nil {
			return serveLoadResult{}, fmt.Errorf("serve-load: trickle submit: %w", err)
		}
		res, err := s.Wait(ctx, st.ID)
		if err != nil {
			return serveLoadResult{}, fmt.Errorf("serve-load: trickle wait: %w", err)
		}
		if res.State != jobs.StateDone {
			return serveLoadResult{}, fmt.Errorf("serve-load: trickle job %s ended %s: %s", st.ID, res.State, res.Error)
		}
		trickle = append(trickle, time.Since(t0).Seconds()*1000)
	}
	finished.Wait()
	elapsed := time.Since(start)

	// Per-client goodput over the burst clients: completed jobs per
	// second up to the client's last completion. The spread (max/min) is
	// the fairness number — 1.0 is perfectly even service.
	type cstat struct {
		n    int
		last time.Duration
	}
	perClient := make(map[string]*cstat, o.Clients)
	all := make([]float64, 0, o.Jobs+o.TrickleJobs)
	for i := range recs {
		if recs[i].failure != nil {
			return serveLoadResult{}, fmt.Errorf("serve-load: burst job %d: %w", i, recs[i].failure)
		}
		all = append(all, recs[i].ms)
		cs := perClient[recs[i].client]
		if cs == nil {
			cs = &cstat{}
			perClient[recs[i].client] = cs
		}
		cs.n++
		if recs[i].doneAt > cs.last {
			cs.last = recs[i].doneAt
		}
	}
	all = append(all, trickle...)
	minGoodput, maxGoodput := math.Inf(1), 0.0
	for _, cs := range perClient {
		g := float64(cs.n) / cs.last.Seconds()
		minGoodput = math.Min(minGoodput, g)
		maxGoodput = math.Max(maxGoodput, g)
	}
	spread := 1.0
	if minGoodput > 0 && !math.IsInf(minGoodput, 1) {
		spread = maxGoodput / minGoodput
	}

	res := serveLoadResult{
		scheduler:      mode,
		latencies:      all,
		trickle:        trickle,
		fairnessSpread: spread,
		sseDropped:     metricOf(s, "aft_sse_dropped_total"),
		rateLimited:    metricOf(s, "aft_rate_limited_total"),
		queueRejected:  metricOf(s, "aft_queue_rejected_total"),
		elapsed:        elapsed,
	}
	return res, s.Close()
}

// loadSpec builds the content-addressed unit of serve-load work: a tiny
// violation-free scenario whose seed encodes (harness seed, client
// kind, index), so every job in a run is a distinct job and re-running
// the same configuration replays the identical population.
func loadSpec(o serveLoadOptions, kind string, i int) jobs.Spec {
	seed := o.Seed + uint64(i) + 1
	if kind == "trickle" {
		seed += 1 << 32
	}
	return jobs.Spec{
		Kind: jobs.KindScenario,
		Scenario: &jobs.ScenarioSpec{
			Spec: &scenario.Spec{
				Name:    "serve-load",
				Seed:    seed,
				Horizon: o.Horizon,
				Organ:   true,
				Policy:  redundancy.DefaultPolicy(),
				Phases: []scenario.Phase{
					{Name: "quiet", Start: 0, Model: scenario.ModelSpec{Kind: "never"}},
				},
			},
		},
	}
}

// pctile returns the q-quantile (nearest-rank) of ms in milliseconds.
func pctile(ms []float64, q float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// metricOf reads one scalar metric from the server's registry snapshot.
func metricOf(s *jobs.Server, name string) int64 {
	for _, sm := range s.Metrics().Snapshot() {
		if sm.Name == name {
			return sm.Value
		}
	}
	return 0
}
