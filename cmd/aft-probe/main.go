// Command aft-probe runs the paper's §3.1 selection pipeline against a
// machine description: it parses `lshw`-style output (or uses the
// built-in Fig. 2 sample), consults the failure knowledge base, and
// prints the selected memory access method per bank with the full audit
// trail.
//
// Usage:
//
//	aft-probe [-lshw FILE] [-kb FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"aft/internal/autoconf"
	"aft/internal/cli"
	"aft/internal/spd"
)

const builtinLSHW = `  *-memory
       description: System Memory
       size: 1536MiB
     *-bank:0
          description: DIMM DDR Synchronous 533 MHz (1.9 ns)
          vendor: CE00000000000000
          serial: F504F679
          slot: DIMM_A
          size: 1GiB
          clock: 533MHz (1.9ns)
     *-bank:1
          description: DIMM DDR Synchronous 667 MHz (1.5 ns)
          vendor: CE00000000000000
          serial: F33DD2FD
          slot: DIMM_B
          size: 512MiB
          clock: 667MHz (1.5ns)
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-probe", flag.ContinueOnError)
	lshwPath := fs.String("lshw", "", "path to lshw output (default: built-in Fig. 2 sample)")
	kbPath := fs.String("kb", "", "path to a JSON failure knowledge base (default: built-in)")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	text := builtinLSHW
	if *lshwPath != "" {
		data, err := os.ReadFile(*lshwPath)
		if err != nil {
			return err
		}
		text = string(data)
	}

	kb := spd.DefaultKnowledgeBase()
	if *kbPath != "" {
		data, err := os.ReadFile(*kbPath)
		if err != nil {
			return err
		}
		kb, err = spd.LoadKnowledgeBase(data)
		if err != nil {
			return err
		}
	}

	mods, err := spd.ParseLSHW(text)
	if err != nil {
		return err
	}
	sel := autoconf.NewSelector(kb, nil)
	for i, m := range mods {
		fmt.Fprintf(stdout, "=== bank %d\n", i)
		decision, err := sel.Select(m)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, decision)
		fmt.Fprintln(stdout)
	}
	return nil
}
