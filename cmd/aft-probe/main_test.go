package main

import (
	"strings"
	"testing"
)

func TestRunBuiltinLSHW(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "=== bank 0") || !strings.Contains(got, "=== bank 1") {
		t.Fatalf("expected two banks in output:\n%s", got)
	}
}

func TestRunMissingLSHWFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-lshw", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing lshw file accepted")
	}
}
