// Command aft-worker is a stateless fleet worker for aft-serve: it
// leases jobs from a coordinator over the /v1 worker protocol
// (internal/jobs/worker), executes them with the exact code the
// coordinator's local pool would use, streams campaign checkpoints back
// every lease's configured cadence, and hands in terminal results.
//
// A worker owns no disk state — every durable byte lives in the
// coordinator's store — so it may be SIGKILLed at any moment: its lease
// expires, the coordinator requeues the job from the last uploaded
// checkpoint, and the dead worker's in-flight writes are rejected by
// their stale fencing token. Run as many workers as you like against
// one coordinator; duplicate submissions, duplicate deliveries, and
// worker churn never change a result byte. See OPERATIONS.md for fleet
// deployment guidance and API.md for the wire protocol.
//
// Usage:
//
//	aft-worker -coordinator URL [-name NAME] [-jobs N] [-poll DUR]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aft/internal/cli"
	"aft/internal/jobs/worker"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// defaultName builds the conventional worker name, hostname-pid.
func defaultName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// run is the testable entry point. It blocks until the job quota is
// reached or a termination signal arrives.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-worker", flag.ContinueOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (required), e.g. http://127.0.0.1:8606")
	name := fs.String("name", defaultName(), "stable worker name for the coordinator's registry")
	maxJobs := fs.Int("jobs", 0, "exit after processing this many leases (0 = run until signalled)")
	poll := fs.Duration("poll", 200*time.Millisecond, "sleep between lease attempts when the queue is empty")
	quiet := fs.Bool("quiet", false, "suppress per-job progress lines")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}
	if *coord == "" {
		return fmt.Errorf("aft-worker: -coordinator is required")
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(stdout, "aft-worker %s: %s\n", *name, fmt.Sprintf(format, args...))
	}
	if *quiet {
		logf = nil
	}
	// The banner is load-bearing: the fleet integration test parses it
	// to learn the worker is up before killing it.
	fmt.Fprintf(stdout, "aft-worker %s polling %s\n", *name, *coord)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	st, err := worker.Run(ctx, worker.Options{
		Coordinator: *coord,
		Name:        *name,
		Poll:        *poll,
		MaxJobs:     *maxJobs,
		Logf:        logf,
	})
	fmt.Fprintf(stdout, "aft-worker %s done: grants=%d completed=%d shards=%d uploads=%d abandoned=%d\n",
		*name, st.Grants, st.Completed, st.Shards, st.Uploads, st.Abandoned)
	return err
}
