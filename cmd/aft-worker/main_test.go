package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"aft/internal/experiments"
	"aft/internal/jobs"
)

// waitCtx bounds the blocking waits in the fleet test.
func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// decodeJSON decodes and closes a response body.
func decodeJSON(resp *http.Response, v any) error {
	defer func() { _ = resp.Body.Close() }()
	return json.NewDecoder(resp.Body).Decode(v)
}

func TestRunUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, flag := range []string{"-coordinator", "-name", "-jobs", "-poll"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("usage lacks %s", flag)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRequiresCoordinator(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil || !strings.Contains(err.Error(), "-coordinator is required") {
		t.Fatalf("missing -coordinator not rejected: %v", err)
	}
}

// TestHelperProcessWorker is not a test: it is aft-worker's main loop,
// re-invoked as a child process so the fleet test can SIGKILL a real
// worker mid-campaign.
func TestHelperProcessWorker(t *testing.T) {
	if os.Getenv("AFT_WORKER_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	if err := run(strings.Split(os.Getenv("AFT_WORKER_ARGS"), "\n"), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerProc is one child aft-worker process.
type workerProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

// startWorker launches a real aft-worker child and waits for its
// banner.
func startWorker(t *testing.T, args ...string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperProcessWorker$")
	cmd.Env = append(os.Environ(),
		"AFT_WORKER_HELPER=1",
		"AFT_WORKER_ARGS="+strings.Join(args, "\n"),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	wp := &workerProc{cmd: cmd, out: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	banner := make(chan struct{}, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			wp.out.WriteString(line + "\n")
			if strings.HasPrefix(line, "aft-worker ") && strings.Contains(line, " polling ") {
				select {
				case banner <- struct{}{}:
				default:
				}
			}
		}
	}()
	select {
	case <-banner:
	case <-time.After(30 * time.Second):
		t.Fatalf("worker never announced itself; output so far:\n%s", wp.out)
	}
	return wp
}

// TestWorkerFleetSIGKILL is the real-process half of the distributed
// durability proof: an in-process coordinator hands a sharded campaign
// to two real aft-worker children, one is SIGKILLed after the first
// checkpoint lands, and the survivor finishes the job with a transcript
// byte-identical to an uninterrupted single-process run.
func TestWorkerFleetSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	srv, err := jobs.NewServer(jobs.Options{
		Dir:              t.TempDir(),
		DisableLocalPool: true,
		CheckpointEvery:  100_000,
		ShardRounds:      1_000_000,
		LeaseTTL:         500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	cfg := experiments.DefaultFig7Config(3_000_000)
	st, _, err := srv.Submit(jobs.Spec{Kind: jobs.KindCampaign, Campaign: &cfg})
	if err != nil {
		t.Fatal(err)
	}

	victim := startWorker(t, "-coordinator", hs.URL, "-name", "victim", "-quiet")
	startWorker(t, "-coordinator", hs.URL, "-name", "survivor", "-quiet")

	// SIGKILL the victim once the first checkpoint is durable. Killing
	// either worker is equivalent (leases are worker-agnostic); naming
	// one keeps the test deterministic about who dies.
	deadline := time.Now().Add(2 * time.Minute)
	killed := false
	for time.Now().Before(deadline) {
		status, ok := srv.StatusOf(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if status.State.Terminal() {
			t.Fatalf("campaign finished before the kill (state %s); raise Steps", status.State)
		}
		if status.CheckpointRounds > 0 {
			if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			_ = victim.cmd.Wait()
			killed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !killed {
		t.Fatal("no checkpoint observed before the deadline")
	}

	res, err := srv.Wait(waitCtx(t), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != jobs.StateDone {
		t.Fatalf("final state %s: %s", res.State, res.Error)
	}
	single, err := experiments.RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := jobs.CampaignResult(st.ID, cfg, single, false).Transcript; res.Transcript != want {
		t.Fatal("transcript after real SIGKILL differs from single-process run")
	}

	// The coordinator's registry recorded the death: the victim's lease
	// expired rather than completing.
	resp, err := http.Get(hs.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var wr jobs.WorkersReply
	if err := decodeJSON(resp, &wr); err != nil {
		t.Fatal(err)
	}
	expired := int64(0)
	for _, w := range wr.Workers {
		if w.Name == "victim" {
			expired = w.Expired
		}
	}
	if expired == 0 {
		t.Fatalf("victim's lease never expired in the registry: %+v", wr.Workers)
	}
}
