// Command aft-audit loads an assumption-carrying deployment manifest
// (or prints/audits the built-in sample) and reports the syndromes
// detectable before the system ever runs: undocumented or unbound
// assumption variables, unverifiable bindings, and a Boulding category
// shortfall against the target environment.
//
// With -env it additionally performs the §4 re-qualification activity:
// the manifest's recorded bindings are matched against the destination
// environment's facts (a JSON object mapping variable names to observed
// hypothesis IDs) and stale bindings are reported.
//
// Usage:
//
//	aft-audit [-manifest FILE] [-env FILE] [-print-sample]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"aft/internal/manifest"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	path := flag.String("manifest", "", "path to a JSON manifest (default: built-in sample)")
	envPath := flag.String("env", "", "path to a JSON environment-fact file for re-qualification")
	printSample := flag.Bool("print-sample", false, "print the built-in sample manifest and exit")
	flag.Parse()

	if *printSample {
		data, err := manifest.Example().Encode()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	m := manifest.Example()
	if *path != "" {
		data, err := os.ReadFile(*path)
		if err != nil {
			return err
		}
		m, err = manifest.Parse(data)
		if err != nil {
			return err
		}
	}

	rep, err := m.Audit()
	if err != nil {
		return err
	}
	fmt.Printf("system:            %s\n", rep.System)
	fmt.Printf("boulding category: %v (required: %v)\n", rep.Category, rep.RequiredCategory)
	if rep.BouldingClash {
		fmt.Println("  !! Boulding clash: the system is underqualified for its environment")
	}
	if len(rep.Findings) == 0 {
		fmt.Println("no findings: every assumption is bound and verifiable")
	} else {
		fmt.Printf("%d finding(s):\n", len(rep.Findings))
		for _, f := range rep.Findings {
			fmt.Printf("  %-36s %s\n", f.Variable, f.Problem)
		}
	}

	if *envPath == "" {
		return nil
	}
	data, err := os.ReadFile(*envPath)
	if err != nil {
		return err
	}
	var env map[string]string
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("parse environment facts: %w", err)
	}
	stale := m.Requalify(env)
	if len(stale) == 0 {
		fmt.Println("re-qualification: every recorded binding holds in the destination environment")
		return nil
	}
	fmt.Printf("re-qualification: %d stale binding(s):\n", len(stale))
	for _, s := range stale {
		note := "rebind to the observed alternative"
		if !s.Declared {
			note = "observed fact is OUTSIDE the declared alternatives — redesign required"
		}
		fmt.Printf("  %-36s bound %q, observed %q — %s\n", s.Variable, s.Bound, s.Observed, note)
	}
	return nil
}
