// Command aft-audit loads an assumption-carrying deployment manifest
// (or prints/audits the built-in sample) and reports the syndromes
// detectable before the system ever runs: undocumented or unbound
// assumption variables, unverifiable bindings, and a Boulding category
// shortfall against the target environment.
//
// With -env it additionally performs the §4 re-qualification activity:
// the manifest's recorded bindings are matched against the destination
// environment's facts (a JSON object mapping variable names to observed
// hypothesis IDs) and stale bindings are reported.
//
// Usage:
//
//	aft-audit [-manifest FILE] [-env FILE] [-print-sample]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"aft/internal/cli"
	"aft/internal/manifest"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-audit", flag.ContinueOnError)
	path := fs.String("manifest", "", "path to a JSON manifest (default: built-in sample)")
	envPath := fs.String("env", "", "path to a JSON environment-fact file for re-qualification")
	printSample := fs.Bool("print-sample", false, "print the built-in sample manifest and exit")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	if *printSample {
		data, err := manifest.Example().Encode()
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
		return nil
	}

	m := manifest.Example()
	if *path != "" {
		data, err := os.ReadFile(*path)
		if err != nil {
			return err
		}
		m, err = manifest.Parse(data)
		if err != nil {
			return err
		}
	}

	rep, err := m.Audit()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "system:            %s\n", rep.System)
	fmt.Fprintf(stdout, "boulding category: %v (required: %v)\n", rep.Category, rep.RequiredCategory)
	if rep.BouldingClash {
		fmt.Fprintln(stdout, "  !! Boulding clash: the system is underqualified for its environment")
	}
	if len(rep.Findings) == 0 {
		fmt.Fprintln(stdout, "no findings: every assumption is bound and verifiable")
	} else {
		fmt.Fprintf(stdout, "%d finding(s):\n", len(rep.Findings))
		for _, f := range rep.Findings {
			fmt.Fprintf(stdout, "  %-36s %s\n", f.Variable, f.Problem)
		}
	}

	if *envPath == "" {
		return nil
	}
	data, err := os.ReadFile(*envPath)
	if err != nil {
		return err
	}
	var env map[string]string
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("parse environment facts: %w", err)
	}
	stale := m.Requalify(env)
	if len(stale) == 0 {
		fmt.Fprintln(stdout, "re-qualification: every recorded binding holds in the destination environment")
		return nil
	}
	fmt.Fprintf(stdout, "re-qualification: %d stale binding(s):\n", len(stale))
	for _, s := range stale {
		note := "rebind to the observed alternative"
		if !s.Declared {
			note = "observed fact is OUTSIDE the declared alternatives — redesign required"
		}
		fmt.Fprintf(stdout, "  %-36s bound %q, observed %q — %s\n", s.Variable, s.Bound, s.Observed, note)
	}
	return nil
}
