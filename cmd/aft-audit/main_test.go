package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBuiltinSample(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, needle := range []string{"system:", "boulding category:"} {
		if !strings.Contains(got, needle) {
			t.Errorf("output lacks %q", needle)
		}
	}
}

func TestRunPrintSampleIsLoadable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-print-sample"}, &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2 strings.Builder
	if err := run([]string{"-manifest", path}, &out2); err != nil {
		t.Fatalf("printed sample does not audit: %v", err)
	}
}

func TestRunRequalify(t *testing.T) {
	env := filepath.Join(t.TempDir(), "env.json")
	if err := os.WriteFile(env, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-env", env}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "re-qualification:") {
		t.Fatalf("re-qualification report missing:\n%s", out.String())
	}
}

func TestRunMissingManifest(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-manifest", "/does/not/exist.json"}, &out); err == nil {
		t.Fatal("missing manifest accepted")
	}
}
