package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"aft/internal/experiments"
	"aft/internal/jobs"
)

func TestRunUsage(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, flag := range []string{"-addr", "-store", "-workers", "-checkpoint-every"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("usage lacks %s", flag)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunBadStore(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-store", ""}, &out); err == nil {
		t.Fatal("empty store accepted")
	}
}

// TestHelperProcessServe is not a test: it is aft-serve's main loop,
// re-invoked as a child process by the crash-recovery test so the
// parent can SIGKILL a real server mid-campaign.
func TestHelperProcessServe(t *testing.T) {
	if os.Getenv("AFT_SERVE_HELPER") != "1" {
		t.Skip("helper process entry point")
	}
	if err := run(strings.Split(os.Getenv("AFT_SERVE_ARGS"), "\n"), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// server is one child aft-serve process.
type server struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *bytes.Buffer
}

// startServer launches the helper process and parses the resolved
// listen address from its banner line.
func startServer(t *testing.T, args ...string) *server {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperProcessServe$")
	cmd.Env = append(os.Environ(),
		"AFT_SERVE_HELPER=1",
		"AFT_SERVE_ARGS="+strings.Join(args, "\n"),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	srv := &server{cmd: cmd, out: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})

	// Scan for the banner; keep draining stdout afterwards so the child
	// never blocks on a full pipe.
	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			srv.out.WriteString(line + "\n")
			if strings.HasPrefix(line, "aft-serve listening on ") {
				select {
				case banner <- strings.Fields(strings.TrimPrefix(line, "aft-serve listening on "))[0]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-banner:
		srv.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its address; output so far:\n%s", srv.out)
	}
	return srv
}

// get fetches a URL and decodes the JSON body into v.
func get(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: decode %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// TestCrashRecoverySIGKILL is the end-to-end durability proof: a real
// aft-serve child is SIGKILLed mid-campaign, a second child on the same
// store resumes from the last checkpoint, and the final transcript is
// byte-identical to an uninterrupted in-process run.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	store := t.TempDir()
	cfg := experiments.DefaultFig7Config(8_000_000)
	cfg.SampleEvery = 100_000 // Fig. 6 series must survive the kill too
	res, err := experiments.RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected := experiments.RenderFig6(res) + experiments.RenderFig7(res, cfg.Policy.Min)

	srv := startServer(t, "-addr", "127.0.0.1:0", "-store", store, "-workers", "2", "-checkpoint-every", "250000")

	spec, err := json.Marshal(jobs.Spec{Kind: jobs.KindCampaign, Campaign: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.base+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var sub jobs.SubmitReply
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}

	// Wait for the first durable checkpoint, then kill -9.
	deadline := time.Now().Add(2 * time.Minute)
	killed := false
	for time.Now().Before(deadline) {
		var st jobs.Status
		get(t, srv.base+"/jobs/"+sub.ID, &st)
		if st.State.Terminal() {
			t.Fatalf("campaign finished before the kill (state %s); raise Steps", st.State)
		}
		if st.CheckpointRounds > 0 {
			if err := srv.cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			_ = srv.cmd.Wait()
			killed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !killed {
		t.Fatal("no checkpoint observed before the deadline")
	}

	// Restart on the same store: the index must survive and the job must
	// resume from its checkpoint and finish.
	srv2 := startServer(t, "-addr", "127.0.0.1:0", "-store", store, "-workers", "2", "-checkpoint-every", "250000")
	var list jobs.ListReply
	get(t, srv2.base+"/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Fatalf("job index did not survive the kill: %+v", list.Jobs)
	}

	var final jobs.Status
	for time.Now().Before(deadline) {
		get(t, srv2.base+"/jobs/"+sub.ID, &final)
		if final.State.Terminal() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != jobs.StateDone {
		t.Fatalf("resumed job state %s (%s)", final.State, final.Error)
	}

	var result jobs.Result
	if code := get(t, srv2.base+"/jobs/"+sub.ID+"/result", &result); code != http.StatusOK {
		t.Fatalf("result fetch: %d", code)
	}
	if result.Transcript != expected {
		t.Fatalf("transcript after SIGKILL+resume differs from uninterrupted run:\n--- got\n%s\n--- want\n%s",
			result.Transcript, expected)
	}

	// The restarted server's metrics must show the resume.
	mresp, err := http.Get(srv2.base + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	metricz, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metricz), "aft_jobs_resumed_total 1") {
		t.Fatalf("metricz does not show the resume:\n%s", metricz)
	}

	// Graceful shutdown path: SIGTERM must exit cleanly.
	if err := srv2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv2.cmd.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v\noutput:\n%s", err, srv2.out)
	}
}
