// Command aft-serve is the durable experiment job server: a long-running
// HTTP/JSON daemon (internal/jobs) that accepts Fig. 6/7 campaigns,
// E8/E9/E10 sweep grids, and chaos scenarios, executes them on a bounded
// worker pool, and survives being killed at any instant — running
// campaigns checkpoint every -checkpoint-every rounds through
// internal/checkpoint, so a restarted server resumes them from the last
// snapshot and renders final transcripts byte-identical to an
// uninterrupted run.
//
// Endpoints (see API.md for schemas and a crash-recovery walkthrough):
//
//	POST /jobs               submit a job (content-addressed; duplicates dedup)
//	GET  /jobs               list all jobs
//	GET  /jobs/{id}          job status and progress
//	GET  /jobs/{id}/result   terminal result (transcript + summary)
//	POST /jobs/{id}/cancel   cancel (running campaigns checkpoint first)
//	GET  /jobs/{id}/events   progress as Server-Sent Events
//	GET  /metricz            text metrics exposition
//	GET  /healthz            liveness, lifecycle phase, job-state counts
//
// Fleet protocol (for aft-worker processes; fenced leases make every
// write safe against dead workers' delayed packets):
//
//	POST /v1/lease                 lease the next runnable job
//	POST /v1/jobs/{id}/renew       heartbeat (and learn of cancellation)
//	PUT  /v1/jobs/{id}/checkpoint  stream a campaign snapshot back
//	POST /v1/jobs/{id}/complete    hand in a terminal result
//	GET  /v1/workers               fleet worker registry
//
// On SIGINT/SIGTERM the server shuts down gracefully: every running
// campaign writes a final checkpoint and parks, and the next aft-serve
// on the same -store directory resumes it. Deployment guidance (ports,
// store layout, worker sizing, crash-recovery semantics, and serving
// under load — priorities, fair queuing, rate limits) lives in
// OPERATIONS.md.
//
// Usage:
//
//	aft-serve [-addr HOST:PORT] [-store DIR] [-workers N]
//	          [-checkpoint-every ROUNDS] [-scheduler fair|fifo]
//	          [-rate-limit RPS] [-rate-burst N] [-max-queued N]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aft/internal/cli"
	"aft/internal/jobs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable entry point. It blocks until the listener fails
// or a termination signal arrives, then shuts down gracefully
// (checkpointing every running campaign) before returning.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8606", "listen address (use port 0 for an ephemeral port)")
	store := fs.String("store", "aft-store", "job-store directory (created if absent)")
	workers := fs.Int("workers", 0, "worker pool size (0 = one per CPU)")
	ckptEvery := fs.Int64("checkpoint-every", 0, "campaign snapshot cadence in rounds (0 = 100000)")
	coordinator := fs.Bool("coordinator", false, "pure-coordinator mode: run no local workers; jobs execute only on leased aft-worker processes")
	leaseTTL := fs.Duration("lease-ttl", 0, "fleet lease duration between heartbeats (0 = 10s)")
	shardRounds := fs.Int64("shard-rounds", 0, "max campaign rounds per lease; longer campaigns are sharded across the fleet (0 = whole campaign per lease)")
	scheduler := fs.String("scheduler", "", "dispatch discipline: fair (priority + per-client weighted round-robin, the default) or fifo (strict submission order)")
	rateLimit := fs.Float64("rate-limit", 0, "per-client submission rate cap in requests/sec; over-limit submits get 429 with Retry-After (0 = off)")
	rateBurst := fs.Int("rate-burst", 0, "per-client token-bucket burst size when -rate-limit is on (values < 1 become 1)")
	maxQueued := fs.Int("max-queued", 0, "admission queue depth cap: new submissions beyond this many queued jobs get 429 (0 = unlimited)")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	srv, err := jobs.NewServer(jobs.Options{
		Dir:              *store,
		Workers:          *workers,
		CheckpointEvery:  *ckptEvery,
		DisableLocalPool: *coordinator,
		LeaseTTL:         *leaseTTL,
		ShardRounds:      *shardRounds,
		Scheduler:        *scheduler,
		RateLimit:        *rateLimit,
		RateBurst:        *rateBurst,
		MaxQueued:        *maxQueued,
	})
	if err != nil {
		return err
	}
	for _, note := range srv.RecoveryNotes() {
		fmt.Fprintf(stdout, "aft-serve: recovery: %s\n", note)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		// Close parks any campaigns the recovery pass resumed; its
		// error matters as much as the listen failure.
		return errors.Join(err, srv.Close())
	}
	// The resolved address line is load-bearing: with port 0 it is how
	// scripts (and the crash-recovery integration test) learn the port.
	fmt.Fprintf(stdout, "aft-serve listening on %s (store %s)\n", ln.Addr(), *store)

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-errc:
		return errors.Join(err, srv.Close())
	case s := <-sig:
		fmt.Fprintf(stdout, "aft-serve: %v: checkpointing running jobs and shutting down\n", s)
		// Close the job server first: it refuses new submissions (503),
		// ends SSE streams, and parks running campaigns at a durable
		// checkpoint — so the HTTP drain below has nothing left to
		// pin it to its timeout.
		err := srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		return err
	}
}
