package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// transcript cuts an aft-sim output down to the Fig. 7 section, the
// part that must be byte-identical across straight, sharded, and
// resumed runs.
func transcript(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "Fig. 7")
	if i < 0 {
		t.Fatalf("output has no Fig. 7 transcript:\n%s", out)
	}
	return out[i:]
}

// sim runs the command and returns its output.
func sim(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("aft-sim %v: %v", args, err)
	}
	return out.String()
}

// TestShardedRunMatchesStraight asserts the sharded checkpointed run
// renders the exact Fig. 7 transcript of the single-pass run.
func TestShardedRunMatchesStraight(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig7.ckpt")
	straight := sim(t, "-steps", "30000", "-seed", "11")
	sharded := sim(t, "-steps", "30000", "-seed", "11", "-shards", "3", "-checkpoint", ckpt)
	if !strings.Contains(sharded, "shard 3/3 complete at round 30000") {
		t.Fatalf("missing shard progress:\n%s", sharded)
	}
	if transcript(t, sharded) != transcript(t, straight) {
		t.Fatal("sharded transcript diverges from straight run")
	}
}

// TestHaltAndResume is the preemption workflow: kill after 2 of 4
// shards, resume from the checkpoint, and end with the transcript of an
// uninterrupted run — on either engine.
func TestHaltAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig7.ckpt")
	straight := sim(t, "-steps", "40000", "-seed", "3")

	halted := sim(t, "-steps", "40000", "-seed", "3", "-shards", "4", "-halt-after", "2", "-checkpoint", ckpt)
	if !strings.Contains(halted, "halted at round 20000 of 40000") {
		t.Fatalf("missing halt notice:\n%s", halted)
	}
	if strings.Contains(halted, "Fig. 7") {
		t.Fatal("halted run printed a final transcript")
	}

	resumed := sim(t, "-resume", ckpt)
	if !strings.Contains(resumed, "resuming 20000/40000 rounds") {
		t.Fatalf("missing resume header:\n%s", resumed)
	}
	if transcript(t, resumed) != transcript(t, straight) {
		t.Fatal("resumed transcript diverges from straight run")
	}

	// Cross-engine: the fused snapshot resumes on the reference loop.
	halted2 := sim(t, "-steps", "40000", "-seed", "3", "-shards", "4", "-halt-after", "2", "-checkpoint", ckpt)
	_ = halted2
	crossResumed := sim(t, "-resume", ckpt, "-engine", "reference")
	if transcript(t, crossResumed) != transcript(t, straight) {
		t.Fatal("cross-engine resume diverges from straight run")
	}
}

// TestResumeContinuesShardChain asserts a resumed invocation with
// -shards picks up the chain where the halt left it.
func TestResumeContinuesShardChain(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig7.ckpt")
	straight := sim(t, "-steps", "30000", "-seed", "5")
	sim(t, "-steps", "30000", "-seed", "5", "-shards", "3", "-halt-after", "1", "-checkpoint", ckpt)
	resumed := sim(t, "-resume", ckpt, "-shards", "3", "-checkpoint", ckpt)
	if strings.Contains(resumed, "shard 1/3") {
		t.Fatalf("resumed run re-ran a completed shard:\n%s", resumed)
	}
	for _, needle := range []string{"shard 2/3 complete at round 20000", "shard 3/3 complete at round 30000"} {
		if !strings.Contains(resumed, needle) {
			t.Fatalf("missing %q:\n%s", needle, resumed)
		}
	}
	if transcript(t, resumed) != transcript(t, straight) {
		t.Fatal("resumed shard chain diverges from straight run")
	}
}

// TestCheckpointFlagValidation covers the rejected flag combinations
// and bad snapshot files.
func TestCheckpointFlagValidation(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	cases := [][]string{
		{"-replicas", "2", "-checkpoint", filepath.Join(dir, "x.ckpt")},
		{"-replicas", "2", "-shards", "2"},
		{"-shards", "0"},
		{"-halt-after", "-1"},
		{"-halt-after", "1"}, // no -checkpoint
		{"-resume", filepath.Join(dir, "missing.ckpt")},
		{"-resume", filepath.Join(dir, "x.ckpt"), "-steps", "1000"},
		{"-steps", "5", "-shards", "10"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("aft-sim %v succeeded, want error", args)
		}
	}
}

// TestCheckpointWithSampling asserts the Fig. 6 series ride the
// checkpoint: a resumed sampled run prints the full staircase.
func TestCheckpointWithSampling(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fig6.ckpt")
	straight := sim(t, "-steps", "12000", "-sample", "20", "-storm-every", "4000")
	sim(t, "-steps", "12000", "-sample", "20", "-storm-every", "4000",
		"-shards", "4", "-halt-after", "2", "-checkpoint", ckpt)
	resumed := sim(t, "-resume", ckpt)
	iStraight := strings.Index(straight, "Fig. 6")
	iResumed := strings.Index(resumed, "Fig. 6")
	if iStraight < 0 || iResumed < 0 {
		t.Fatal("sampled runs lack the Fig. 6 transcript")
	}
	if straight[iStraight:] != resumed[iResumed:] {
		t.Fatal("resumed Fig. 6 series diverge from straight run")
	}
}
