// Command aft-sim runs the paper's §3.3 autonomic redundancy simulation
// with configurable length, seed, and disturbance regime, printing the
// Fig. 6-style series (when sampling) and the Fig. 7-style histogram.
//
// With -replicas R > 1 it runs R independent replicas of the campaign
// with seeds derived deterministically from -seed, spread across a
// worker pool (-parallel, 0 = one per CPU), and prints per-replica
// summaries plus the aggregate; replica i's result depends only on
// (seed, i), never on the worker count.
//
// Single runs execute on the fused zero-allocation campaign engine by
// default; -engine reference selects the pre-engine loop for
// differential runs. The header line names the engine; everything below
// it (the Fig. 6/7 transcripts) is byte-identical across engines, so
// compare with `diff <(aft-sim ... | tail -n +2) <(aft-sim -engine
// reference ... | tail -n +2)`.
//
// Single runs are checkpointable. -checkpoint FILE writes a snapshot of
// the campaign state (engine buffers, switchboard, PRNG streams — see
// internal/checkpoint) when the run completes; -shards N additionally
// splits the campaign into N sequential shards and rewrites the
// snapshot after each, so a kill between shards loses at most one
// shard's work; -resume FILE continues a snapshotted campaign to its
// configured length, rendering transcripts byte-identical to an
// uninterrupted run. -halt-after K stops after K shards (simulating the
// preemption a later -resume recovers from). Snapshots restore on
// either engine, whatever engine wrote them.
//
// Usage:
//
//	aft-sim [-steps N] [-seed S] [-sample K] [-storm-every N] [-max-level L]
//	        [-replicas R] [-parallel W] [-engine fused|reference]
//	        [-checkpoint FILE] [-resume FILE] [-shards N] [-halt-after K]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"aft/internal/checkpoint"
	"aft/internal/cli"
	"aft/internal/experiments"
	"aft/internal/redundancy"
	"aft/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// campaignRunner is the engine-agnostic shape of a steppable campaign;
// both experiments.Campaign and experiments.ReferenceCampaign satisfy
// it.
type campaignRunner interface {
	Run(n int64)
	Rounds() int64
	Remaining() int64
	Config() experiments.AdaptiveRunConfig
	Result() experiments.AdaptiveRunResult
	Snapshot() (*checkpoint.Snapshot, error)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-sim", flag.ContinueOnError)
	steps := fs.Int64("steps", 1_000_000, "number of voting rounds")
	seed := fs.Uint64("seed", 1906, "random seed")
	sample := fs.Int64("sample", 0, "series sampling period (0 = histogram only)")
	stormEvery := fs.Int64("storm-every", 0, "storm onset period (0 = steps/13)")
	maxLevel := fs.Int("max-level", 4, "maximum storm intensity level")
	replicas := fs.Int("replicas", 1, "independent replicas of the campaign")
	parallel := fs.Int("parallel", 0, "worker pool for replicas (0 = one per CPU)")
	engine := fs.String("engine", "fused", "campaign engine for single runs: fused (zero-alloc) or reference (pre-engine loop)")
	ckpt := fs.String("checkpoint", "", "write a campaign snapshot to FILE (after every shard with -shards)")
	resume := fs.String("resume", "", "resume the campaign snapshotted in FILE")
	shards := fs.Int("shards", 1, "split the campaign into N sequential checkpointed shards")
	haltAfter := fs.Int("halt-after", 0, "stop after completing K shards this invocation (0 = run to the end)")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	if *engine != "fused" && *engine != "reference" {
		return fmt.Errorf("unknown engine %q (want fused or reference)", *engine)
	}

	if *replicas > 1 {
		// The sweep rides the fused engine; refuse the conflicting flags
		// rather than silently ignoring them (transcripts are
		// engine-independent, but a differential run should say so).
		if *engine != "fused" {
			return fmt.Errorf("-engine %s applies to single runs only; the -replicas sweep always uses the fused engine", *engine)
		}
		if *ckpt != "" || *resume != "" || *shards != 1 {
			return fmt.Errorf("-checkpoint/-resume/-shards apply to single runs only")
		}
		cfg := stormConfig(*steps, *seed, *sample, *stormEvery, *maxLevel)
		return runReplicas(cfg, *replicas, *parallel, stdout)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards %d must be at least 1", *shards)
	}
	if *haltAfter < 0 {
		return fmt.Errorf("-halt-after %d must be non-negative", *haltAfter)
	}
	if *haltAfter > 0 && *ckpt == "" {
		return fmt.Errorf("-halt-after needs -checkpoint, or the halted work is lost")
	}

	var c campaignRunner
	var err error
	if *resume != "" {
		// The campaign configuration rides the snapshot; flags that would
		// contradict it are rejected rather than silently ignored.
		var conflict error
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "steps", "seed", "sample", "storm-every", "max-level":
				conflict = fmt.Errorf("-%s conflicts with -resume: the snapshot carries the campaign configuration", f.Name)
			}
		})
		if conflict != nil {
			return conflict
		}
		c, err = restoreCampaign(*resume, *engine)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "resuming %d/%d rounds from %s (seed %d, %s engine)\n",
			c.Rounds(), c.Config().Steps, *resume, c.Config().Seed, *engine)
	} else {
		cfg := stormConfig(*steps, *seed, *sample, *stormEvery, *maxLevel)
		if *engine == "fused" {
			c, err = experiments.NewCampaign(cfg)
		} else {
			c, err = experiments.NewReferenceCampaign(cfg)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "running %d rounds (seed %d, storms every %d rounds, max level %d, %s engine)\n",
			cfg.Steps, cfg.Seed, cfg.Storms.StormEvery, cfg.Storms.MaxLevel, *engine)
	}

	if err := runSharded(c, *shards, *ckpt, *haltAfter, stdout); err != nil {
		return err
	}
	if c.Remaining() > 0 {
		fmt.Fprintf(stdout, "halted at round %d of %d; continue with -resume %s\n",
			c.Rounds(), c.Config().Steps, *ckpt)
		return nil
	}
	res := c.Result()
	if res.Redundancy != nil {
		fmt.Fprint(stdout, experiments.RenderFig6(res))
	}
	fmt.Fprint(stdout, experiments.RenderFig7(res, c.Config().Policy.Min))
	return nil
}

// stormConfig assembles the campaign configuration from the flags.
func stormConfig(steps int64, seed uint64, sample, stormEvery int64, maxLevel int) experiments.AdaptiveRunConfig {
	cfg := experiments.DefaultFig7Config(steps)
	cfg.Seed = seed
	cfg.SampleEvery = sample
	if stormEvery > 0 {
		cfg.Storms.StormEvery = stormEvery
	}
	cfg.Storms.MaxLevel = maxLevel
	return cfg
}

// restoreCampaign loads a snapshot file onto the selected engine.
func restoreCampaign(path, engine string) (campaignRunner, error) {
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if engine == "fused" {
		return experiments.RestoreCampaign(snap)
	}
	return experiments.RestoreReferenceCampaign(snap)
}

// runSharded drives the campaign shard by shard, rewriting the
// checkpoint file after each completed shard. With shards == 1 and no
// halt it degenerates to a single run (plus a final snapshot when
// -checkpoint is set). Shards already covered by a resumed snapshot are
// skipped.
func runSharded(c campaignRunner, shards int, ckpt string, haltAfter int, stdout io.Writer) error {
	plan, err := experiments.SplitCampaign(c.Config(), shards)
	if err != nil {
		return err
	}
	done := 0
	for _, sh := range plan {
		if sh.End <= c.Rounds() {
			continue // completed before the resume point
		}
		c.Run(sh.End - c.Rounds())
		if ckpt != "" {
			snap, err := c.Snapshot()
			if err != nil {
				return err
			}
			if err := snap.WriteFile(ckpt); err != nil {
				return err
			}
		}
		if shards > 1 {
			suffix := ""
			if ckpt != "" {
				suffix = fmt.Sprintf(" (checkpoint %s)", ckpt)
			}
			fmt.Fprintf(stdout, "shard %d/%d complete at round %d%s\n", sh.Index+1, sh.Count, c.Rounds(), suffix)
		}
		if done++; haltAfter > 0 && done >= haltAfter && c.Remaining() > 0 {
			return nil
		}
	}
	return nil
}

// runReplicas fans the campaign out over derived seeds and aggregates.
func runReplicas(cfg experiments.AdaptiveRunConfig, replicas, parallel int, stdout io.Writer) error {
	if cfg.SampleEvery > 0 {
		fmt.Fprintln(stdout, "(-sample applies to single runs only; disabled for the replica sweep)")
		cfg.SampleEvery = 0
	}
	seeds := xrand.Seeds(cfg.Seed, replicas)
	fmt.Fprintf(stdout, "running %d replicas x %d rounds (root seed %d, %d workers)\n",
		replicas, cfg.Steps, cfg.Seed, experiments.Workers(parallel))
	results, err := experiments.SweepSeeds(cfg, seeds, parallel)
	if err != nil {
		return err
	}
	minR := redundancy.DefaultPolicy().Min
	var failures, replicaRounds, rounds int64
	var minFraction float64
	for i, res := range results {
		fmt.Fprintf(stdout, "  replica %2d (seed %20d): failures=%-4d time@min=%9.5f%% avg-redundancy=%.4f\n",
			i, seeds[i], res.Failures, 100*res.MinFraction,
			float64(res.ReplicaRounds)/float64(res.Rounds))
		failures += res.Failures
		replicaRounds += res.ReplicaRounds
		rounds += res.Rounds
		minFraction += res.MinFraction
	}
	fmt.Fprintf(stdout, "aggregate over %d replicas: failures=%d time@min(r=%d)=%.5f%% avg-redundancy=%.4f\n",
		replicas, failures, minR, 100*minFraction/float64(replicas),
		float64(replicaRounds)/float64(rounds))
	return nil
}
