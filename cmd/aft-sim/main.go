// Command aft-sim runs the paper's §3.3 autonomic redundancy simulation
// with configurable length, seed, and disturbance regime, printing the
// Fig. 6-style series (when sampling) and the Fig. 7-style histogram.
//
// With -replicas R > 1 it runs R independent replicas of the campaign
// with seeds derived deterministically from -seed, spread across a
// worker pool (-parallel, 0 = one per CPU), and prints per-replica
// summaries plus the aggregate; replica i's result depends only on
// (seed, i), never on the worker count.
//
// Single runs execute on the fused zero-allocation campaign engine by
// default; -engine reference selects the pre-engine loop for
// differential runs. The header line names the engine; everything below
// it (the Fig. 6/7 transcripts) is byte-identical across engines, so
// compare with `diff <(aft-sim ... | tail -n +2) <(aft-sim -engine
// reference ... | tail -n +2)`.
//
// Usage:
//
//	aft-sim [-steps N] [-seed S] [-sample K] [-storm-every N] [-max-level L]
//	        [-replicas R] [-parallel W] [-engine fused|reference]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"aft/internal/cli"
	"aft/internal/experiments"
	"aft/internal/redundancy"
	"aft/internal/xrand"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-sim", flag.ContinueOnError)
	steps := fs.Int64("steps", 1_000_000, "number of voting rounds")
	seed := fs.Uint64("seed", 1906, "random seed")
	sample := fs.Int64("sample", 0, "series sampling period (0 = histogram only)")
	stormEvery := fs.Int64("storm-every", 0, "storm onset period (0 = steps/13)")
	maxLevel := fs.Int("max-level", 4, "maximum storm intensity level")
	replicas := fs.Int("replicas", 1, "independent replicas of the campaign")
	parallel := fs.Int("parallel", 0, "worker pool for replicas (0 = one per CPU)")
	engine := fs.String("engine", "fused", "campaign engine for single runs: fused (zero-alloc) or reference (pre-engine loop)")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	runCampaign := experiments.RunAdaptive
	switch *engine {
	case "fused":
	case "reference":
		runCampaign = experiments.RunAdaptiveReference
	default:
		return fmt.Errorf("unknown engine %q (want fused or reference)", *engine)
	}

	cfg := experiments.DefaultFig7Config(*steps)
	cfg.Seed = *seed
	cfg.SampleEvery = *sample
	if *stormEvery > 0 {
		cfg.Storms.StormEvery = *stormEvery
	}
	cfg.Storms.MaxLevel = *maxLevel

	if *replicas > 1 {
		// The sweep rides the fused engine; refuse the conflicting flag
		// rather than silently ignoring it (transcripts are
		// engine-independent, but a differential run should say so).
		if *engine != "fused" {
			return fmt.Errorf("-engine %s applies to single runs only; the -replicas sweep always uses the fused engine", *engine)
		}
		return runReplicas(cfg, *replicas, *parallel, stdout)
	}

	fmt.Fprintf(stdout, "running %d rounds (seed %d, storms every %d rounds, max level %d, %s engine)\n",
		cfg.Steps, cfg.Seed, cfg.Storms.StormEvery, cfg.Storms.MaxLevel, *engine)
	res, err := runCampaign(cfg)
	if err != nil {
		return err
	}
	if res.Redundancy != nil {
		fmt.Fprint(stdout, experiments.RenderFig6(res))
	}
	fmt.Fprint(stdout, experiments.RenderFig7(res, redundancy.DefaultPolicy().Min))
	return nil
}

// runReplicas fans the campaign out over derived seeds and aggregates.
func runReplicas(cfg experiments.AdaptiveRunConfig, replicas, parallel int, stdout io.Writer) error {
	if cfg.SampleEvery > 0 {
		fmt.Fprintln(stdout, "(-sample applies to single runs only; disabled for the replica sweep)")
		cfg.SampleEvery = 0
	}
	seeds := xrand.Seeds(cfg.Seed, replicas)
	fmt.Fprintf(stdout, "running %d replicas x %d rounds (root seed %d, %d workers)\n",
		replicas, cfg.Steps, cfg.Seed, experiments.Workers(parallel))
	results, err := experiments.SweepSeeds(cfg, seeds, parallel)
	if err != nil {
		return err
	}
	minR := redundancy.DefaultPolicy().Min
	var failures, replicaRounds, rounds int64
	var minFraction float64
	for i, res := range results {
		fmt.Fprintf(stdout, "  replica %2d (seed %20d): failures=%-4d time@min=%9.5f%% avg-redundancy=%.4f\n",
			i, seeds[i], res.Failures, 100*res.MinFraction,
			float64(res.ReplicaRounds)/float64(res.Rounds))
		failures += res.Failures
		replicaRounds += res.ReplicaRounds
		rounds += res.Rounds
		minFraction += res.MinFraction
	}
	fmt.Fprintf(stdout, "aggregate over %d replicas: failures=%d time@min(r=%d)=%.5f%% avg-redundancy=%.4f\n",
		replicas, failures, minR, 100*minFraction/float64(replicas),
		float64(replicaRounds)/float64(rounds))
	return nil
}
