// Command aft-sim runs the paper's §3.3 autonomic redundancy simulation
// with configurable length, seed, and disturbance regime, printing the
// Fig. 6-style series (when sampling) and the Fig. 7-style histogram.
//
// Usage:
//
//	aft-sim [-steps N] [-seed S] [-sample K] [-storm-every N] [-max-level L]
package main

import (
	"flag"
	"fmt"
	"log"

	"aft/internal/experiments"
	"aft/internal/redundancy"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	steps := flag.Int64("steps", 1_000_000, "number of voting rounds")
	seed := flag.Uint64("seed", 1906, "random seed")
	sample := flag.Int64("sample", 0, "series sampling period (0 = histogram only)")
	stormEvery := flag.Int64("storm-every", 0, "storm onset period (0 = steps/13)")
	maxLevel := flag.Int("max-level", 4, "maximum storm intensity level")
	flag.Parse()

	cfg := experiments.DefaultFig7Config(*steps)
	cfg.Seed = *seed
	cfg.SampleEvery = *sample
	if *stormEvery > 0 {
		cfg.Storms.StormEvery = *stormEvery
	}
	cfg.Storms.MaxLevel = *maxLevel

	fmt.Printf("running %d rounds (seed %d, storms every %d rounds, max level %d)\n",
		cfg.Steps, cfg.Seed, cfg.Storms.StormEvery, cfg.Storms.MaxLevel)
	res, err := experiments.RunAdaptive(cfg)
	if err != nil {
		return err
	}
	if res.Redundancy != nil {
		fmt.Print(experiments.RenderFig6(res))
	}
	fmt.Print(experiments.RenderFig7(res, redundancy.DefaultPolicy().Min))
	return nil
}
