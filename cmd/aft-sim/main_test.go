package main

import (
	"strings"
	"testing"
)

func TestRunSmallCampaign(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-steps", "20000", "-seed", "7"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, needle := range []string{"running 20000 rounds", "fused engine", "Fig. 7", "time at minimal redundancy"} {
		if !strings.Contains(got, needle) {
			t.Errorf("output lacks %q", needle)
		}
	}
}

func TestRunEnginesAgreeBelowHeader(t *testing.T) {
	render := func(engine string) string {
		var out strings.Builder
		if err := run([]string{"-steps", "20000", "-engine", engine}, &out); err != nil {
			t.Fatal(err)
		}
		_, rest, ok := strings.Cut(out.String(), "\n")
		if !ok {
			t.Fatalf("no header line in output")
		}
		return rest
	}
	if render("fused") != render("reference") {
		t.Fatal("fused and reference transcripts diverge below the header")
	}
}

func TestRunReplicaSweep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-steps", "10000", "-replicas", "2", "-parallel", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "aggregate over 2 replicas") {
		t.Fatalf("missing aggregate line:\n%s", out.String())
	}
}

func TestRunRejectsBadEngine(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-engine", "warp"}, &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if err := run([]string{"-engine", "reference", "-replicas", "2", "-steps", "1000"}, &out); err == nil {
		t.Fatal("reference engine accepted for a replica sweep")
	}
}
