// Command aft-chaos runs the deterministic cross-strategy chaos
// scenarios of internal/scenario outside `go test`: it executes a
// builtin scenario (or a JSON spec file) from a seed, prints the
// canonical event transcript, evaluates the run-time invariants, and
// can replay the organ track differentially through both the fused
// campaign engine and the pre-engine reference loop.
//
// Exit status: non-zero when -invariants finds a violation (the message
// names the invariant and the simulated time), when -diff detects an
// engine divergence, or on any usage error.
//
// Usage:
//
//	aft-chaos -list
//	aft-chaos [-scenario name|file.json] [-seed N] [-invariants] [-diff]
//	          [-quiet] [-print-spec] [-sabotage invariant]
//
// -sabotage is a test-only hook that deliberately breaks the named
// invariant mid-run, proving the checkers (and this command's exit
// code) actually fire.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"aft/internal/cli"
	"aft/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-chaos", flag.ContinueOnError)
	name := fs.String("scenario", "storm-replay", "builtin scenario name or path to a JSON spec file")
	seed := fs.Uint64("seed", 0, "seed override (0 = the spec's default)")
	invariants := fs.Bool("invariants", false, "evaluate invariants and exit non-zero on any violation")
	diff := fs.Bool("diff", false, "differentially replay the organ track on the fused engine and the reference loop")
	quiet := fs.Bool("quiet", false, "suppress the event transcript, print only the summary lines")
	printSpec := fs.Bool("print-spec", false, "print the scenario spec as JSON (the -scenario file format) and exit")
	sabotage := fs.String("sabotage", "", "test-only: deliberately violate the named invariant mid-run")
	list := fs.Bool("list", false, "list builtin scenarios and exit")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	if *list {
		for _, n := range scenario.Names() {
			s, _ := scenario.Builtin(n)
			fmt.Fprintf(stdout, "%-18s %s\n", n, s.Description)
		}
		return nil
	}

	spec, ok := scenario.Builtin(*name)
	if !ok {
		var err error
		if spec, err = scenario.Load(*name); err != nil {
			return fmt.Errorf("scenario %q is neither builtin nor loadable: %w (use -list)", *name, err)
		}
	}

	if *printSpec {
		data, err := spec.Encode()
		if err != nil {
			return err
		}
		_, err = stdout.Write(data)
		return err
	}

	res, err := scenario.Run(spec, scenario.Options{Seed: *seed, Sabotage: *sabotage})
	if err != nil {
		return err
	}
	transcript := res.Transcript
	if *quiet {
		var b strings.Builder
		for _, line := range strings.SplitAfter(transcript, "\n") {
			if strings.Contains(line, "] summary ") || strings.Contains(line, "] violation ") {
				b.WriteString(line)
			}
		}
		transcript = b.String()
	}
	fmt.Fprint(stdout, transcript)

	if *diff {
		rep, err := scenario.Differential(spec, *seed)
		if err != nil {
			return err
		}
		if rep.Rounds == 0 {
			fmt.Fprintln(stdout, "differential: no organ track to compare")
		} else {
			fmt.Fprintf(stdout, "differential: fused engine and reference loop agree over %d rounds\n", rep.Rounds)
		}
	}

	if *invariants {
		if len(res.Violations) > 0 {
			return fmt.Errorf("%d invariant violation(s); first: %s", len(res.Violations), res.Violations[0])
		}
		fmt.Fprintf(stdout, "invariants: %d checks, all held\n", res.InvariantsChecked)
	}
	return nil
}
