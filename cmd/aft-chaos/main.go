// Command aft-chaos runs the deterministic cross-strategy chaos
// scenarios of internal/scenario outside `go test`: it executes a
// builtin scenario (or a JSON spec file) from a seed, prints the
// canonical event transcript, evaluates the run-time invariants, and
// can replay the organ track differentially through both the fused
// campaign engine and the pre-engine reference loop.
//
// Exit status: non-zero when -invariants finds a violation (the message
// names the invariant and the simulated time), when -diff detects an
// engine divergence, or on any usage error.
//
// With -gen N the command switches to fuzzing mode: it generates N
// random specs from the corpus seed (internal/scenario/gen), checks
// each one, optionally shrinks every failure to a minimal reproducer
// (-shrink), writes the shrunk specs as JSON files (-shrink-out), and
// exits non-zero if any spec failed. The corpus is a pure function of
// -seed, so a failing run is reproducible bit for bit.
//
// Usage:
//
//	aft-chaos -list
//	aft-chaos [-scenario name|file.json] [-seed N] [-invariants] [-diff]
//	          [-quiet] [-print-spec] [-sabotage invariant]
//	aft-chaos -gen N [-seed S] [-diff] [-shrink] [-shrink-out dir]
//
// -sabotage is a test-only hook that deliberately breaks the named
// invariant mid-run, proving the checkers (and this command's exit
// code) actually fire.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"aft/internal/cli"
	"aft/internal/scenario"
	"aft/internal/scenario/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("aft-chaos", flag.ContinueOnError)
	name := fs.String("scenario", "storm-replay", "builtin scenario name or path to a JSON spec file")
	seed := fs.Uint64("seed", 0, "seed override (0 = the spec's default)")
	invariants := fs.Bool("invariants", false, "evaluate invariants and exit non-zero on any violation")
	diff := fs.Bool("diff", false, "differentially replay the organ track on the fused engine and the reference loop")
	quiet := fs.Bool("quiet", false, "suppress the event transcript, print only the summary lines")
	printSpec := fs.Bool("print-spec", false, "print the scenario spec as JSON (the -scenario file format) and exit")
	sabotage := fs.String("sabotage", "", "test-only: deliberately violate the named invariant mid-run")
	list := fs.Bool("list", false, "list builtin scenarios and exit")
	genN := fs.Int("gen", 0, "fuzzing mode: generate and check this many random specs from -seed")
	shrink := fs.Bool("shrink", false, "with -gen: minimize every failing spec to a reproducer")
	shrinkOut := fs.String("shrink-out", "", "with -gen -shrink: write shrunk reproducer specs into this directory")
	if done, err := cli.Parse(fs, args, stdout); done {
		return err
	}

	if *genN > 0 {
		return runGen(stdout, *genN, *seed, gen.Options{Diff: *diff, Shrink: *shrink || *shrinkOut != ""}, *shrinkOut)
	}

	if *list {
		for _, n := range scenario.Names() {
			s, _ := scenario.Builtin(n)
			fmt.Fprintf(stdout, "%-18s %s\n", n, s.Description)
		}
		return nil
	}

	spec, ok := scenario.Builtin(*name)
	if !ok {
		var err error
		if spec, err = scenario.Load(*name); err != nil {
			return fmt.Errorf("scenario %q is neither builtin nor loadable: %w (use -list)", *name, err)
		}
	}

	if *printSpec {
		data, err := spec.Encode()
		if err != nil {
			return err
		}
		_, err = stdout.Write(data)
		return err
	}

	res, err := scenario.Run(spec, scenario.Options{Seed: *seed, Sabotage: *sabotage})
	if err != nil {
		return err
	}
	transcript := res.Transcript
	if *quiet {
		var b strings.Builder
		for _, line := range strings.SplitAfter(transcript, "\n") {
			if strings.Contains(line, "] summary ") || strings.Contains(line, "] violation ") {
				b.WriteString(line)
			}
		}
		transcript = b.String()
	}
	fmt.Fprint(stdout, transcript)

	if *diff {
		rep, err := scenario.Differential(spec, *seed)
		if err != nil {
			return err
		}
		if rep.Rounds == 0 {
			fmt.Fprintln(stdout, "differential: no organ track to compare")
		} else {
			fmt.Fprintf(stdout, "differential: fused engine and reference loop agree over %d rounds\n", rep.Rounds)
		}
	}

	if *invariants {
		if len(res.Violations) > 0 {
			return fmt.Errorf("%d invariant violation(s); first: %s", len(res.Violations), res.Violations[0])
		}
		fmt.Fprintf(stdout, "invariants: %d checks, all held\n", res.InvariantsChecked)
	}
	return nil
}

// runGen drives a fuzz campaign: generate, check, shrink, report. The
// exit status is non-zero when any generated spec fails.
func runGen(stdout io.Writer, n int, seed uint64, opt gen.Options, outDir string) error {
	if seed == 0 {
		seed = 1
	}
	rep := gen.Campaign(seed, n, opt)
	for _, f := range rep.Findings {
		fmt.Fprintf(stdout, "FAIL %s [%s]: %s\n", f.Spec.Name, f.Signature, f.Detail)
		if f.Shrunk != nil {
			data, err := f.Shrunk.Encode()
			if err != nil {
				return err
			}
			if outDir != "" {
				path := filepath.Join(outDir, f.Spec.Name+".json")
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return err
				}
				fmt.Fprintf(stdout, "  shrunk reproducer (%d evals) written to %s\n", f.ShrinkEvals, path)
			} else {
				fmt.Fprintf(stdout, "  shrunk reproducer (%d evals):\n%s", f.ShrinkEvals, data)
			}
		}
	}
	fmt.Fprintf(stdout, "gen: seed=%d specs=%d findings=%d\n", rep.Seed, rep.Specs, len(rep.Findings))
	if len(rep.Findings) > 0 {
		return fmt.Errorf("gen: %d of %d generated specs failed", len(rep.Findings), rep.Specs)
	}
	return nil
}
