package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aft/internal/scenario"
)

func TestRunBuiltinWithInvariants(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "storm-replay", "-seed", "1", "-invariants"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, needle := range []string{"summary organ", "attack replay: rejected", "all held"} {
		if !strings.Contains(got, needle) {
			t.Errorf("output lacks %q", needle)
		}
	}
}

func TestRunSabotageFails(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scenario", "storm-replay", "-invariants", "-quiet", "-sabotage", scenario.InvRedundancyBand}, &out)
	if err == nil {
		t.Fatal("sabotaged run exited clean")
	}
	if !strings.Contains(err.Error(), scenario.InvRedundancyBand) || !strings.Contains(err.Error(), "t=") {
		t.Fatalf("error does not name the invariant and time: %v", err)
	}
}

func TestRunDiff(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "quiet", "-diff", "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "reference loop agree") {
		t.Fatalf("diff verdict missing:\n%s", out.String())
	}
}

func TestRunSpecFile(t *testing.T) {
	spec, ok := scenario.Builtin("quiet")
	if !ok {
		t.Fatal("quiet builtin missing")
	}
	data, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "quiet.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-scenario", path, "-invariants"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "name=quiet") {
		t.Fatal("file-loaded scenario did not run")
	}
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range scenario.Names() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output lacks %q", name)
		}
	}
}

func TestRunUnknownScenario(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "does-not-exist"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunPrintSpecRoundTrips(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "teardown", "-print-spec"}, &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "td.json")
	if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.Load(path); err != nil {
		t.Fatalf("-print-spec output does not Load: %v", err)
	}
}

func TestRunGenClean(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "60", "-seed", "1", "-diff"}, &out); err != nil {
		t.Fatalf("generated corpus seed 1 has findings: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "gen: seed=1 specs=60 findings=0") {
		t.Fatalf("campaign summary missing:\n%s", out.String())
	}
}

func TestRunGenDeterministicOutput(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-gen", "30", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-gen", "30", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same-seed campaigns printed different reports")
	}
}
